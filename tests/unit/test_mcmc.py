"""Unit tests for the MCMC engine (repro.mcmc)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SamplerError
from repro.io import GradientTable
from repro.mcmc import (
    AdaptiveProposals,
    GibbsLinearModel,
    MCMCConfig,
    MCMCResult,
    MCMCSampler,
    effective_sample_size,
    geweke_zscore,
    mh_parameter_update,
    split_rhat,
)
from repro.mcmc.diagnostics import autocorrelation
from repro.models import LogPosterior, MultiFiberModel
from repro.rng import seed_streams
from repro.utils.geometry import fibonacci_sphere


@pytest.fixture
def gtab():
    bvals = np.concatenate([np.zeros(2), np.full(24, 1000.0)])
    bvecs = np.concatenate([np.zeros((2, 3)), fibonacci_sphere(24)])
    return GradientTable(bvals, bvecs)


def make_posterior(gtab, n=4, seed=0, sigma=5.0):
    rng = np.random.default_rng(seed)
    model = MultiFiberModel(2)
    mu = model.predict(
        gtab,
        s0=np.full(n, 100.0),
        d=np.full(n, 1e-3),
        f=np.tile([0.55, 0.0], (n, 1)),
        theta=np.tile([np.pi / 2, 1.0], (n, 1)),
        phi=np.tile([0.0, 1.0], (n, 1)),
    )
    data = mu + rng.normal(scale=sigma, size=mu.shape)
    return LogPosterior(gtab, data)


class TestConfig:
    def test_n_loops_formula(self):
        cfg = MCMCConfig(n_burnin=500, n_samples=250, sample_interval=2)
        assert cfg.n_loops == 1000

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_burnin=-1),
            dict(n_samples=0),
            dict(sample_interval=0),
            dict(adapt_every=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            MCMCConfig(**kwargs)


class TestAdaptiveProposals:
    def test_initial_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveProposals(np.zeros((2, 3)))
        with pytest.raises(ConfigurationError):
            AdaptiveProposals(np.ones(3))
        with pytest.raises(ConfigurationError):
            AdaptiveProposals(np.ones((2, 3)), min_sigma=1.0, max_sigma=0.5)

    def test_all_accept_grows_sigma(self):
        p = AdaptiveProposals(np.ones((2, 1)))
        for _ in range(10):
            p.record(0, np.array([True, True]))
        p.adapt()
        assert np.all(p.sigma > 1.0)

    def test_all_reject_shrinks_sigma(self):
        p = AdaptiveProposals(np.ones((2, 1)))
        for _ in range(10):
            p.record(0, np.array([False, False]))
        p.adapt()
        assert np.all(p.sigma < 1.0)

    def test_balanced_keeps_sigma(self):
        p = AdaptiveProposals(np.ones((1, 1)))
        for i in range(10):
            p.record(0, np.array([i % 2 == 0]))
        p.adapt()
        np.testing.assert_allclose(p.sigma, 1.0)

    def test_window_reset_after_adapt(self):
        p = AdaptiveProposals(np.ones((1, 1)))
        p.record(0, np.array([True]))
        rates = p.adapt()
        assert rates[0, 0] == 1.0
        assert p.window_acceptance()[0, 0] == 0.0

    def test_clamping(self):
        p = AdaptiveProposals(np.ones((1, 1)), min_sigma=0.9, max_sigma=1.1)
        for _ in range(100):
            p.record(0, np.array([True]))
        p.adapt()
        assert p.sigma[0, 0] == 1.1

    def test_default_initial_sigma_floor(self):
        sig = AdaptiveProposals.default_initial_sigma(np.zeros((2, 3)), rel=0.1)
        assert np.all(sig > 0)


class TestMHUpdate:
    def test_targets_standard_normal(self):
        # 1-D Gaussian target, many parallel lanes: the empirical law of
        # accepted states must match N(0, 1).
        n = 512

        def logp(x):
            return -0.5 * x[:, 0] ** 2

        params = np.zeros((n, 1))
        lp = logp(params)
        rng = seed_streams(n, seed=0)
        draws = []
        for _ in range(600):
            _, lp = mh_parameter_update(logp, params, lp, 0, np.full(n, 2.4), rng)
            draws.append(params[:, 0].copy())
        x = np.concatenate(draws[100:])
        assert abs(x.mean()) < 0.02
        assert abs(x.std() - 1.0) < 0.02

    def test_accept_updates_in_place(self):
        def logp(x):
            return np.zeros(x.shape[0])  # flat target: accept everything

        n = 8
        params = np.zeros((n, 2))
        lp = logp(params)
        rng = seed_streams(n, seed=1)
        acc, lp = mh_parameter_update(logp, params, lp, 1, np.ones(n), rng)
        assert acc.all()
        assert np.all(params[:, 1] != 0.0)
        assert np.all(params[:, 0] == 0.0)  # untouched parameter

    def test_reject_keeps_state(self):
        def logp(x):
            # Anything but exactly zero is vetoed.
            return np.where(x[:, 0] == 0.0, 0.0, -np.inf)

        n = 8
        params = np.zeros((n, 1))
        lp = logp(params)
        rng = seed_streams(n, seed=2)
        acc, _ = mh_parameter_update(logp, params, lp, 0, np.ones(n), rng)
        assert not acc.any()
        np.testing.assert_array_equal(params, 0.0)

    def test_escape_from_minus_inf(self):
        def logp(x):
            return np.where(np.abs(x[:, 0]) < 10.0, 0.0, -np.inf)

        n = 4
        params = np.full((n, 1), 100.0)  # vetoed start
        lp = logp(params)
        rng = seed_streams(n, seed=3)
        for _ in range(600):
            _, lp = mh_parameter_update(logp, params, lp, 0, np.full(n, 60.0), rng)
        assert np.all(np.abs(params[:, 0]) < 10.0)


class TestSampler:
    def test_shapes_and_counters(self, gtab):
        post = make_posterior(gtab, n=3)
        cfg = MCMCConfig(n_burnin=20, n_samples=5, sample_interval=2, adapt_every=10)
        res = MCMCSampler(cfg).run(post)
        assert res.samples.shape == (5, 3, 9)
        assert res.n_loops == 30
        assert len(res.acceptance_history) == 3
        assert res.wall_seconds > 0

    def test_samples_have_positive_posterior(self, gtab):
        post = make_posterior(gtab, n=3)
        cfg = MCMCConfig(n_burnin=20, n_samples=5, sample_interval=1)
        res = MCMCSampler(cfg).run(post)
        for s in range(5):
            assert np.all(np.isfinite(post(res.samples[s])))

    def test_recovers_dominant_direction(self, gtab):
        # True fiber is +x; posterior mean direction must align with it.
        post = make_posterior(gtab, n=4, sigma=2.0)
        cfg = MCMCConfig(n_burnin=150, n_samples=30, sample_interval=2)
        res = MCMCSampler(cfg).run(post)
        lay = post.layout
        from repro.utils.geometry import spherical_to_cartesian

        theta = res.samples[:, :, lay.theta][:, :, 0]
        phi = res.samples[:, :, lay.phi][:, :, 0]
        v = spherical_to_cartesian(theta, phi)
        align = np.abs(v[..., 0])  # |x component|
        assert align.mean() > 0.95

    def test_recovers_fraction_and_sigma(self, gtab):
        post = make_posterior(gtab, n=4, sigma=2.0)
        cfg = MCMCConfig(n_burnin=200, n_samples=40, sample_interval=2)
        res = MCMCSampler(cfg).run(post)
        lay = post.layout
        f1 = res.samples[:, :, 3]
        assert abs(f1.mean() - 0.55) < 0.1
        sig = res.samples[:, :, lay.sigma]
        assert 1.0 < sig.mean() < 4.0

    def test_acceptance_rate_in_band(self, gtab):
        post = make_posterior(gtab, n=4)
        cfg = MCMCConfig(n_burnin=200, n_samples=10, sample_interval=1, adapt_every=25)
        res = MCMCSampler(cfg).run(post)
        # After adaptation the rate should sit near 25-50 % (paper's band);
        # allow slack around the band edges.
        late = np.mean(res.acceptance_history[-3:])
        assert 0.15 < late < 0.65

    def test_deterministic_given_seed(self, gtab):
        post = make_posterior(gtab, n=2)
        cfg = MCMCConfig(n_burnin=10, n_samples=3, sample_interval=1, seed=5)
        a = MCMCSampler(cfg).run(post)
        b = MCMCSampler(cfg).run(post)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_seed_changes_chain(self, gtab):
        post = make_posterior(gtab, n=2)
        a = MCMCSampler(MCMCConfig(n_burnin=10, n_samples=3, seed=1)).run(post)
        b = MCMCSampler(MCMCConfig(n_burnin=10, n_samples=3, seed=2)).run(post)
        assert not np.array_equal(a.samples, b.samples)

    def test_scalar_matches_lockstep(self, gtab):
        # The CPU (per-voxel loop) and GPU (lockstep) executions must
        # produce identical chains: same math, same per-voxel streams.
        post = make_posterior(gtab, n=3)
        cfg = MCMCConfig(n_burnin=15, n_samples=4, sample_interval=2, adapt_every=5)
        lock = MCMCSampler(cfg).run(post)
        scal = MCMCSampler(cfg).run_scalar(post)
        np.testing.assert_allclose(lock.samples, scal.samples, rtol=1e-10)

    def test_bad_initial_shape_rejected(self, gtab):
        post = make_posterior(gtab, n=3)
        with pytest.raises(SamplerError):
            MCMCSampler(MCMCConfig(n_burnin=1, n_samples=1)).run(
                post, initial=np.zeros((2, 9))
            )

    def test_bad_rng_lanes_rejected(self, gtab):
        post = make_posterior(gtab, n=3)
        with pytest.raises(SamplerError):
            MCMCSampler(MCMCConfig(n_burnin=1, n_samples=1)).run(
                post, rng=seed_streams(7)
            )

    def test_all_vetoed_init_raises(self, gtab):
        post = make_posterior(gtab, n=2)
        bad = post.initial_params()
        bad[:, post.layout.sigma] = -1.0
        with pytest.raises(SamplerError, match="zero posterior"):
            MCMCSampler(MCMCConfig(n_burnin=1, n_samples=1)).run(post, initial=bad)


class TestToFiberFields:
    def test_scatter_into_mask(self, gtab):
        post = make_posterior(gtab, n=3)
        cfg = MCMCConfig(n_burnin=30, n_samples=4, sample_interval=1)
        res = MCMCSampler(cfg).run(post)
        mask = np.zeros((3, 2, 2), dtype=bool)
        mask[0, 0, 0] = mask[1, 1, 1] = mask[2, 0, 1] = True
        fields = res.to_fiber_fields(mask, post.layout)
        assert len(fields) == 4
        fld = fields[0]
        assert fld.shape3 == (3, 2, 2)
        assert fld.n_fibers == 2
        assert fld.f[0, 0, 0, 0] > 0  # dominant fiber present
        assert fld.f[0, 1, 0, 0] == 0  # outside mask untouched

    def test_threshold_zeroes_weak_fibers(self, gtab):
        post = make_posterior(gtab, n=2)
        res = MCMCResult(
            samples=np.zeros((1, 2, 9)),
            n_loops=1,
            n_voxels=2,
            n_params=9,
        )
        res.samples[0, :, 3] = 0.5  # f1 strong
        res.samples[0, :, 4] = 0.01  # f2 below threshold
        res.samples[0, :, 5:7] = np.pi / 2
        mask = np.ones((2, 1, 1), dtype=bool)
        fields = res.to_fiber_fields(mask, post.layout, f_threshold=0.05)
        assert np.all(fields[0].f[..., 1] == 0.0)
        assert np.all(fields[0].f[..., 0] == 0.5)

    def test_mask_size_mismatch(self, gtab):
        post = make_posterior(gtab, n=3)
        res = MCMCSampler(MCMCConfig(n_burnin=2, n_samples=1)).run(post)
        with pytest.raises(SamplerError):
            res.to_fiber_fields(np.ones((2, 2, 2), bool), post.layout)


class TestDiagnostics:
    def test_autocorrelation_white_noise(self):
        rng = np.random.default_rng(0)
        rho = autocorrelation(rng.normal(size=4000))
        assert rho[0] == pytest.approx(1.0)
        assert np.max(np.abs(rho[1:20])) < 0.08

    def test_autocorrelation_ar1(self):
        rng = np.random.default_rng(1)
        x = np.zeros(8000)
        for i in range(1, len(x)):
            x[i] = 0.9 * x[i - 1] + rng.normal()
        rho = autocorrelation(x)
        assert rho[1] == pytest.approx(0.9, abs=0.05)

    def test_autocorrelation_constant_chain(self):
        rho = autocorrelation(np.ones(100))
        assert rho[0] == 1.0 and np.all(rho[1:] == 0.0)

    def test_ess_iid_close_to_n(self):
        rng = np.random.default_rng(2)
        ess = effective_sample_size(rng.normal(size=2000))
        assert ess > 1500

    def test_ess_correlated_much_smaller(self):
        rng = np.random.default_rng(3)
        x = np.zeros(2000)
        for i in range(1, len(x)):
            x[i] = 0.95 * x[i - 1] + rng.normal()
        assert effective_sample_size(x) < 300

    def test_geweke_stationary_small(self):
        rng = np.random.default_rng(4)
        z = geweke_zscore(rng.normal(size=2000))
        assert abs(z) < 3.0

    def test_geweke_flags_trend(self):
        x = np.linspace(0, 10, 2000) + np.random.default_rng(5).normal(size=2000)
        assert abs(geweke_zscore(x)) > 5.0

    def test_geweke_validation(self):
        with pytest.raises(ConfigurationError):
            geweke_zscore(np.ones(5))
        with pytest.raises(ConfigurationError):
            geweke_zscore(np.ones(100), first=0.8, last=0.8)

    def test_rhat_same_distribution_near_one(self):
        rng = np.random.default_rng(6)
        chains = rng.normal(size=(4, 1000))
        assert split_rhat(chains) < 1.02

    def test_rhat_flags_disagreement(self):
        rng = np.random.default_rng(7)
        chains = rng.normal(size=(4, 500))
        chains[0] += 5.0
        assert split_rhat(chains) > 1.5

    def test_rhat_validation(self):
        with pytest.raises(ConfigurationError):
            split_rhat(np.ones((2, 2)))


class TestGibbs:
    def test_recovers_regression(self):
        rng = np.random.default_rng(0)
        n, p = 200, 3
        X = rng.normal(size=(n, p))
        beta_true = np.array([2.0, -1.0, 0.5])
        y = X @ beta_true + rng.normal(scale=0.5, size=n)
        model = GibbsLinearModel(X, y)
        out = model.sample(n_samples=500, n_burnin=200, seed=1)
        np.testing.assert_allclose(out["beta"].mean(axis=0), beta_true, atol=0.15)
        assert abs(np.sqrt(out["sigma2"].mean()) - 0.5) < 0.1

    def test_exact_conditional_matches_samples(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = X @ [1.0, 2.0] + rng.normal(scale=0.3, size=100)
        model = GibbsLinearModel(X, y)
        mean, _ = model.exact_beta_posterior(sigma2=0.09)
        np.testing.assert_allclose(mean, [1.0, 2.0], atol=0.15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GibbsLinearModel(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ConfigurationError):
            GibbsLinearModel(np.ones((3, 2)), np.ones(3), tau2=-1.0)
        model = GibbsLinearModel(np.eye(3), np.ones(3))
        with pytest.raises(ConfigurationError):
            model.sample(0)
