"""Unit tests for repro.utils.geometry."""

import numpy as np
import pytest

from repro.utils import geometry as geo


class TestSphericalRoundTrip:
    def test_known_axes(self):
        v = geo.spherical_to_cartesian(0.0, 0.0)
        np.testing.assert_allclose(v, [0.0, 0.0, 1.0], atol=1e-15)
        v = geo.spherical_to_cartesian(np.pi / 2, 0.0)
        np.testing.assert_allclose(v, [1.0, 0.0, 0.0], atol=1e-15)
        v = geo.spherical_to_cartesian(np.pi / 2, np.pi / 2)
        np.testing.assert_allclose(v, [0.0, 1.0, 0.0], atol=1e-15)

    def test_round_trip_batch(self):
        rng = np.random.default_rng(0)
        theta = rng.uniform(0.01, np.pi - 0.01, size=200)
        phi = rng.uniform(0, 2 * np.pi, size=200)
        v = geo.spherical_to_cartesian(theta, phi)
        t2, p2 = geo.cartesian_to_spherical(v)
        np.testing.assert_allclose(t2, theta, atol=1e-12)
        np.testing.assert_allclose(p2, phi, atol=1e-12)

    def test_output_is_unit(self):
        rng = np.random.default_rng(1)
        v = geo.spherical_to_cartesian(
            rng.uniform(0, np.pi, 50), rng.uniform(0, 2 * np.pi, 50)
        )
        np.testing.assert_allclose(np.linalg.norm(v, axis=-1), 1.0, atol=1e-14)

    def test_broadcasting(self):
        v = geo.spherical_to_cartesian(np.zeros((4, 1)), np.zeros(3))
        assert v.shape == (4, 3, 3)

    def test_cartesian_rejects_bad_trailing_dim(self):
        with pytest.raises(ValueError):
            geo.cartesian_to_spherical(np.zeros((5, 2)))

    def test_zero_vector_does_not_nan(self):
        theta, phi = geo.cartesian_to_spherical(np.zeros(3))
        assert np.isfinite(theta) and np.isfinite(phi)


class TestNormalize:
    def test_unit_output(self):
        rng = np.random.default_rng(2)
        v = rng.normal(size=(100, 3))
        n = geo.normalize(v)
        np.testing.assert_allclose(np.linalg.norm(n, axis=-1), 1.0, atol=1e-12)

    def test_zero_vectors_pass_through(self):
        v = np.zeros((3, 3))
        v[1] = [1.0, 2.0, 2.0]
        n = geo.normalize(v)
        np.testing.assert_allclose(n[0], 0.0)
        np.testing.assert_allclose(n[2], 0.0)
        np.testing.assert_allclose(np.linalg.norm(n[1]), 1.0)

    def test_direction_preserved(self):
        n = geo.normalize(np.array([0.0, 0.0, 5.0]))
        np.testing.assert_allclose(n, [0.0, 0.0, 1.0])


class TestAngleBetween:
    def test_orthogonal(self):
        a = np.array([1.0, 0.0, 0.0])
        b = np.array([0.0, 1.0, 0.0])
        assert geo.angle_between(a, b) == pytest.approx(np.pi / 2)

    def test_axial_folds_antiparallel(self):
        a = np.array([1.0, 0.0, 0.0])
        assert geo.angle_between(a, -a, axial=True) == pytest.approx(0.0)
        assert geo.angle_between(a, -a, axial=False) == pytest.approx(np.pi)

    def test_batch_shapes(self):
        a = np.tile([1.0, 0.0, 0.0], (7, 1))
        b = np.tile([0.0, 0.0, 1.0], (7, 1))
        ang = geo.angle_between(a, b)
        assert ang.shape == (7,)
        np.testing.assert_allclose(ang, np.pi / 2)


class TestRotations:
    def test_rotation_matrix_is_orthonormal(self):
        R = geo.rotation_matrix(np.array([1.0, 2.0, 3.0]), 0.7)
        np.testing.assert_allclose(R @ R.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(R) == pytest.approx(1.0)

    def test_rotation_about_z(self):
        R = geo.rotation_matrix(np.array([0.0, 0.0, 1.0]), np.pi / 2)
        np.testing.assert_allclose(R @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            geo.rotation_matrix(np.zeros(3), 1.0)

    def test_rotation_between_maps_a_to_b(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            a = geo.normalize(rng.normal(size=3))
            b = geo.normalize(rng.normal(size=3))
            R = geo.rotation_between(a, b)
            np.testing.assert_allclose(R @ a, b, atol=1e-10)

    def test_rotation_between_identical(self):
        a = np.array([0.0, 1.0, 0.0])
        np.testing.assert_allclose(geo.rotation_between(a, a), np.eye(3), atol=1e-12)

    def test_rotation_between_antiparallel(self):
        a = np.array([0.0, 0.0, 1.0])
        R = geo.rotation_between(a, -a)
        np.testing.assert_allclose(R @ a, -a, atol=1e-10)
        a = np.array([1.0, 0.0, 0.0])  # exercise the |a_x|>0.9 branch
        R = geo.rotation_between(a, -a)
        np.testing.assert_allclose(R @ a, -a, atol=1e-10)


class TestSpherePointSets:
    def test_fibonacci_unit_norm(self):
        pts = geo.fibonacci_sphere(100)
        assert pts.shape == (100, 3)
        np.testing.assert_allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-12)

    def test_fibonacci_covers_hemispheres(self):
        pts = geo.fibonacci_sphere(64)
        assert (pts[:, 2] > 0).sum() == 32
        assert (pts[:, 2] < 0).sum() == 32

    def test_fibonacci_min_count(self):
        with pytest.raises(ValueError):
            geo.fibonacci_sphere(0)
        assert geo.fibonacci_sphere(1).shape == (1, 3)

    def test_fibonacci_near_uniform(self):
        # Mean of uniformly distributed points on the sphere is ~0.
        pts = geo.fibonacci_sphere(500)
        assert np.linalg.norm(pts.mean(axis=0)) < 0.01

    def test_random_unit_vectors(self):
        rng = np.random.default_rng(4)
        v = geo.random_unit_vectors(1000, rng)
        np.testing.assert_allclose(np.linalg.norm(v, axis=1), 1.0, atol=1e-12)
        assert np.linalg.norm(v.mean(axis=0)) < 0.1
