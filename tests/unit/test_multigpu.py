"""Tests for the multi-GPU scaling model (repro.gpu.multigpu)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu.multigpu import (
    multi_gpu_tracking_times,
    partition_seeds,
    scaling_curve,
)
from repro.gpu.presets import PHENOM_X4, RADEON_5870
from repro.tracking import SingleSegmentStrategy, UniformStrategy


def exp_lengths(n=4000, samples=4, mean=40.0, cap=400, seed=0):
    rng = np.random.default_rng(seed)
    return np.minimum(
        rng.exponential(scale=mean, size=(samples, n)).astype(int), cap
    )


class TestPartition:
    def test_covers_and_balances(self):
        parts = partition_seeds(10, 3)
        sizes = [p.stop - p.start for p in parts]
        assert sizes == [4, 3, 3]
        assert parts[0].start == 0 and parts[-1].stop == 10

    def test_more_devices_than_seeds(self):
        parts = partition_seeds(2, 4)
        sizes = [p.stop - p.start for p in parts]
        assert sizes == [1, 1, 0, 0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            partition_seeds(0, 2)
        with pytest.raises(ConfigurationError):
            partition_seeds(5, 0)


class TestMultiGpuModel:
    def test_one_device_matches_projection(self):
        from repro.analysis.projection import project_tracking_times

        lengths = exp_lengths()
        segs = UniformStrategy(20).segments(400)
        single = project_tracking_times(lengths, segs, RADEON_5870, PHENOM_X4)
        multi = multi_gpu_tracking_times(
            lengths, segs, RADEON_5870, PHENOM_X4, n_devices=1
        )
        assert multi.kernel_s == pytest.approx(single.kernel_s, rel=1e-9)
        assert multi.reduction_s == pytest.approx(single.reduction_s, rel=1e-9)
        # Transfer differs only by per-launch accounting granularity.
        assert multi.transfer_s == pytest.approx(single.transfer_s, rel=0.05)

    def test_kernel_time_shrinks_with_devices(self):
        lengths = exp_lengths()
        segs = SingleSegmentStrategy().segments(400)
        t1 = multi_gpu_tracking_times(lengths, segs, RADEON_5870, PHENOM_X4, 1)
        t4 = multi_gpu_tracking_times(lengths, segs, RADEON_5870, PHENOM_X4, 4)
        assert t4.kernel_s < t1.kernel_s
        assert t4.kernel_s > t1.kernel_s / 5  # no superlinear magic

    def test_paper_vi_proportional_gains_when_kernel_bound(self):
        # Kernel-bound configuration (monolithic kernel, heavy work):
        # near-proportional scaling, the paper's section-VI claim.
        lengths = exp_lengths(n=20_000, mean=80.0, cap=800)
        segs = SingleSegmentStrategy().segments(800)
        curve = scaling_curve(
            lengths, segs, RADEON_5870, PHENOM_X4, [1, 2, 4]
        )
        eff2 = curve[0].total_s / (2 * curve[1].total_s)
        eff4 = curve[0].total_s / (4 * curve[2].total_s)
        assert eff2 > 0.85
        assert eff4 > 0.7

    def test_transfer_bound_strategy_saturates(self):
        # A_1 is bus/host-bound: adding devices barely helps.
        lengths = exp_lengths(n=20_000, mean=80.0, cap=800)
        segs = UniformStrategy(1).segments(800)
        curve = scaling_curve(lengths, segs, RADEON_5870, PHENOM_X4, [1, 4])
        speed = curve[0].total_s / curve[1].total_s
        assert speed < 1.5

    def test_image_broadcast_cost_scales_with_devices(self):
        lengths = exp_lengths()
        segs = UniformStrategy(50).segments(400)
        t1 = multi_gpu_tracking_times(
            lengths, segs, RADEON_5870, PHENOM_X4, 1, image_bytes_per_sample=10**7
        )
        t2 = multi_gpu_tracking_times(
            lengths, segs, RADEON_5870, PHENOM_X4, 2, image_bytes_per_sample=10**7
        )
        assert t2.transfer_s > t1.transfer_s

    def test_speedup_and_total(self):
        lengths = exp_lengths()
        segs = UniformStrategy(20).segments(400)
        t = multi_gpu_tracking_times(lengths, segs, RADEON_5870, PHENOM_X4, 2)
        assert t.total_s == pytest.approx(
            t.kernel_s + t.transfer_s + t.reduction_s
        )
        assert t.speedup > 1.0
