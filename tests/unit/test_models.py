"""Unit tests for the diffusion models (repro.models)."""

import numpy as np
import pytest

from repro.errors import DataError, ModelError
from repro.io import GradientTable
from repro.models import (
    BallStickModel,
    ConstrainedModel,
    MultiFiberModel,
    TensorModel,
)
from repro.utils.geometry import (
    cartesian_to_spherical,
    fibonacci_sphere,
    spherical_to_cartesian,
)


@pytest.fixture
def gtab():
    n_dwi = 32
    bvals = np.concatenate([np.zeros(4), np.full(n_dwi, 1000.0)])
    bvecs = np.concatenate([np.zeros((4, 3)), fibonacci_sphere(n_dwi)])
    return GradientTable(bvals, bvecs)


class TestTensorModel:
    def test_b0_prediction_is_s0(self, gtab):
        D = np.eye(3) * 1e-3
        mu = TensorModel().predict(gtab, s0=np.array([100.0]), tensors=D[None])
        np.testing.assert_allclose(mu[0, gtab.b0_mask], 100.0)

    def test_isotropic_attenuation(self, gtab):
        d = 1e-3
        mu = TensorModel().predict(
            gtab, s0=np.array([1.0]), tensors=(np.eye(3) * d)[None]
        )
        dw = ~gtab.b0_mask
        np.testing.assert_allclose(mu[0, dw], np.exp(-1000.0 * d), rtol=1e-12)

    def test_fit_recovers_tensor(self, gtab):
        rng = np.random.default_rng(0)
        # Random SPD tensors around physiological scale.
        tensors = []
        for _ in range(20):
            A = rng.normal(size=(3, 3)) * 3e-4
            tensors.append(A @ A.T + np.eye(3) * 3e-4)
        tensors = np.array(tensors)
        s0 = rng.uniform(80, 120, size=20)
        mu = TensorModel().predict(gtab, s0=s0, tensors=tensors)
        fit = TensorModel().fit(gtab, mu)
        np.testing.assert_allclose(fit.tensors, tensors, atol=1e-7)
        np.testing.assert_allclose(fit.s0, s0, rtol=1e-6)

    def test_fit_weighted_close_to_lls_noiseless(self, gtab):
        tensors = (np.diag([1.7, 0.3, 0.3]) * 1e-3)[None]
        mu = TensorModel().predict(gtab, s0=np.array([100.0]), tensors=tensors)
        fit = TensorModel().fit(gtab, mu, weighted=True)
        np.testing.assert_allclose(fit.tensors, tensors, atol=1e-8)

    def test_principal_direction(self, gtab):
        v = np.array([1.0, 1.0, 0.0]) / np.sqrt(2)
        D = 1.5e-3 * np.outer(v, v) + 0.2e-3 * np.eye(3)
        mu = TensorModel().predict(gtab, s0=np.array([1.0]), tensors=D[None])
        fit = TensorModel().fit(gtab, mu)
        pd = fit.principal_direction[0]
        assert abs(np.dot(pd, v)) > 0.999

    def test_fa_md_bounds(self, gtab):
        iso = (np.eye(3) * 1e-3)[None]
        fit_iso = TensorModel().fit(
            gtab, TensorModel().predict(gtab, s0=np.array([1.0]), tensors=iso)
        )
        assert fit_iso.fa[0] == pytest.approx(0.0, abs=1e-6)
        assert fit_iso.md[0] == pytest.approx(1e-3, rel=1e-6)
        stick = (np.diag([1.0, 1e-12, 1e-12]) * 2e-3)[None]
        fit_stick = TensorFitFromTensors(stick)
        assert fit_stick.fa[0] == pytest.approx(1.0, abs=1e-3)

    def test_eigen_sorted_descending(self, gtab):
        fit = TensorFitFromTensors((np.diag([0.3, 1.7, 0.9]) * 1e-3)[None])
        assert fit.evals[0, 0] >= fit.evals[0, 1] >= fit.evals[0, 2]
        # Eigenvector pairing: first column pairs with largest eigenvalue (y).
        assert abs(fit.evecs[0, 1, 0]) > 0.999

    def test_fit_requires_enough_measurements(self):
        bvals = np.full(5, 1000.0)
        bvecs = fibonacci_sphere(5)
        small = GradientTable(bvals, bvecs)
        with pytest.raises(DataError, match="measurements"):
            TensorModel().fit(small, np.ones((1, 5)))

    def test_fit_rejects_mismatched_signal(self, gtab):
        with pytest.raises(DataError):
            TensorModel().fit(gtab, np.ones((1, 7)))

    def test_predict_rejects_bad_tensor_shape(self, gtab):
        with pytest.raises(ModelError):
            TensorModel().predict(gtab, s0=np.ones(1), tensors=np.ones((1, 2, 3)))


def TensorFitFromTensors(tensors):
    from repro.models import TensorFit

    return TensorFit(tensors=tensors, s0=np.ones(len(tensors)))


class TestConstrainedModel:
    def test_b0_is_s0(self, gtab):
        mu = ConstrainedModel().predict(
            gtab,
            s0=np.array([50.0]),
            alpha=np.array([1e-3]),
            beta=np.array([1e-3]),
            theta=np.array([0.5]),
            phi=np.array([1.0]),
        )
        np.testing.assert_allclose(mu[0, gtab.b0_mask], 50.0)

    def test_max_attenuation_along_fiber(self, gtab):
        theta, phi = np.array([np.pi / 2]), np.array([0.0])  # fiber = +x
        mu = ConstrainedModel().predict(
            gtab,
            s0=np.array([1.0]),
            alpha=np.array([0.0]),
            beta=np.array([2e-3]),
            theta=theta,
            phi=phi,
        )
        dw = np.where(~gtab.b0_mask)[0]
        align = np.abs(gtab.bvecs[dw] @ [1.0, 0.0, 0.0])
        assert mu[0, dw[np.argmax(align)]] < mu[0, dw[np.argmin(align)]]


class TestBallStickModel:
    def test_b0_is_s0(self, gtab):
        mu = BallStickModel().predict(
            gtab,
            s0=np.array([80.0]),
            d=np.array([1e-3]),
            f=np.array([0.5]),
            theta=np.array([1.0]),
            phi=np.array([2.0]),
        )
        np.testing.assert_allclose(mu[0, gtab.b0_mask], 80.0)

    def test_f_zero_reduces_to_ball(self, gtab):
        mu = BallStickModel().predict(
            gtab,
            s0=np.array([1.0]),
            d=np.array([1e-3]),
            f=np.array([0.0]),
            theta=np.array([1.0]),
            phi=np.array([2.0]),
        )
        dw = ~gtab.b0_mask
        np.testing.assert_allclose(mu[0, dw], np.exp(-1.0), rtol=1e-12)

    def test_matches_multifiber_n1(self, gtab):
        kwargs = dict(
            s0=np.array([3.0]),
            d=np.array([1.2e-3]),
            theta=np.array([[0.8]]),
            phi=np.array([[2.5]]),
        )
        bs = BallStickModel().predict(
            gtab,
            s0=kwargs["s0"],
            d=kwargs["d"],
            f=np.array([0.6]),
            theta=kwargs["theta"][:, 0],
            phi=kwargs["phi"][:, 0],
        )
        mf = MultiFiberModel(n_fibers=1).predict(
            gtab, f=np.array([[0.6]]), **kwargs
        )
        np.testing.assert_allclose(bs, mf, rtol=1e-14)


class TestMultiFiberModel:
    def test_param_names_count(self):
        assert len(MultiFiberModel(2).param_names) == 8  # + sigma = 9 sampled
        assert MultiFiberModel(3).n_params == 11

    def test_rejects_bad_n_fibers(self):
        with pytest.raises(ModelError):
            MultiFiberModel(0)

    def test_rejects_wrong_fiber_axis(self, gtab):
        with pytest.raises(ModelError, match="trailing"):
            MultiFiberModel(2).predict(
                gtab,
                s0=np.ones(1),
                d=np.array([1e-3]),
                f=np.ones((1, 3)) / 4,
                theta=np.ones((1, 2)),
                phi=np.ones((1, 2)),
            )

    def test_b0_is_s0(self, gtab):
        mu = MultiFiberModel(2).predict(
            gtab,
            s0=np.array([10.0]),
            d=np.array([1e-3]),
            f=np.array([[0.4, 0.3]]),
            theta=np.array([[1.0, 0.5]]),
            phi=np.array([[0.0, 1.5]]),
        )
        np.testing.assert_allclose(mu[0, gtab.b0_mask], 10.0)

    def test_fractions_sum_zero_is_isotropic(self, gtab):
        mu = MultiFiberModel(2).predict(
            gtab,
            s0=np.array([1.0]),
            d=np.array([1e-3]),
            f=np.zeros((1, 2)),
            theta=np.ones((1, 2)),
            phi=np.ones((1, 2)),
        )
        dw = ~gtab.b0_mask
        np.testing.assert_allclose(mu[0, dw], np.exp(-1.0), rtol=1e-12)

    def test_symmetric_under_fiber_swap(self, gtab):
        f = np.array([[0.4, 0.2]])
        theta = np.array([[0.7, 1.9]])
        phi = np.array([[0.3, 2.2]])
        a = MultiFiberModel(2).predict(
            gtab, s0=np.ones(1), d=np.array([1e-3]), f=f, theta=theta, phi=phi
        )
        b = MultiFiberModel(2).predict(
            gtab,
            s0=np.ones(1),
            d=np.array([1e-3]),
            f=f[:, ::-1],
            theta=theta[:, ::-1],
            phi=phi[:, ::-1],
        )
        np.testing.assert_allclose(a, b, rtol=1e-14)

    def test_antipodal_direction_invariance(self, gtab):
        # v and -v are the same fiber: signal must be identical.
        theta, phi = np.array([[0.7, 1.1]]), np.array([[0.3, 2.0]])
        v = spherical_to_cartesian(theta, phi)
        t2, p2 = cartesian_to_spherical(-v)
        a = MultiFiberModel(2).predict(
            gtab,
            s0=np.ones(1),
            d=np.array([1e-3]),
            f=np.array([[0.4, 0.2]]),
            theta=theta,
            phi=phi,
        )
        b = MultiFiberModel(2).predict(
            gtab,
            s0=np.ones(1),
            d=np.array([1e-3]),
            f=np.array([[0.4, 0.2]]),
            theta=t2,
            phi=p2,
        )
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_predict_dirs_matches_predict(self, gtab):
        theta, phi = np.array([[0.7, 1.1]]), np.array([[0.3, 2.0]])
        dirs = spherical_to_cartesian(theta, phi)
        m = MultiFiberModel(2)
        a = m.predict(
            gtab,
            s0=np.array([2.0]),
            d=np.array([1e-3]),
            f=np.array([[0.4, 0.2]]),
            theta=theta,
            phi=phi,
        )
        b = m.predict_dirs(
            gtab,
            s0=np.array([2.0]),
            d=np.array([1e-3]),
            f=np.array([[0.4, 0.2]]),
            dirs=dirs,
        )
        np.testing.assert_allclose(a, b, rtol=1e-14)

    def test_vectorized_over_voxels(self, gtab):
        rng = np.random.default_rng(5)
        n = 17
        kwargs = dict(
            s0=rng.uniform(50, 150, n),
            d=rng.uniform(5e-4, 2e-3, n),
            f=rng.dirichlet([2, 1, 4], size=n)[:, :2],
            theta=rng.uniform(0.1, np.pi - 0.1, (n, 2)),
            phi=rng.uniform(0, 2 * np.pi, (n, 2)),
        )
        batch = MultiFiberModel(2).predict(gtab, **kwargs)
        for v in range(n):
            single = MultiFiberModel(2).predict(
                gtab, **{k: val[v : v + 1] for k, val in kwargs.items()}
            )
            np.testing.assert_allclose(batch[v], single[0], rtol=1e-13)
