"""Unit tests for repro.io.volume."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.io import Volume


def make_vol(shape=(4, 5, 6), voxel=(2.0, 2.0, 2.5)):
    return Volume.from_voxel_sizes(np.zeros(shape), voxel)


class TestConstruction:
    def test_basic(self):
        v = Volume(np.zeros((3, 3, 3)))
        assert v.shape3 == (3, 3, 3)
        assert v.n_voxels == 27
        np.testing.assert_allclose(v.affine, np.eye(4))

    def test_4d_payload(self):
        v = Volume(np.zeros((3, 3, 3, 32)))
        assert v.shape3 == (3, 3, 3)
        assert v.data.shape == (3, 3, 3, 32)

    def test_rejects_2d(self):
        with pytest.raises(DataError, match="3 dimensions"):
            Volume(np.zeros((3, 3)))

    def test_rejects_bad_affine_shape(self):
        with pytest.raises(DataError, match="4x4"):
            Volume(np.zeros((3, 3, 3)), affine=np.eye(3))

    def test_rejects_nonfinite_affine(self):
        aff = np.eye(4)
        aff[0, 0] = np.nan
        with pytest.raises(DataError, match="non-finite"):
            Volume(np.zeros((3, 3, 3)), affine=aff)

    def test_rejects_bad_bottom_row(self):
        aff = np.eye(4)
        aff[3, 0] = 1.0
        with pytest.raises(DataError, match="bottom row"):
            Volume(np.zeros((3, 3, 3)), affine=aff)

    def test_voxel_sizes(self):
        v = make_vol(voxel=(2.0, 2.0, 2.5))
        np.testing.assert_allclose(v.voxel_sizes, [2.0, 2.0, 2.5])


class TestCoordinates:
    def test_round_trip(self):
        v = make_vol()
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 3, size=(50, 3))
        back = v.world_to_voxel(v.voxel_to_world(pts))
        np.testing.assert_allclose(back, pts, atol=1e-12)

    def test_scaling(self):
        v = make_vol(voxel=(2.0, 2.0, 2.5))
        np.testing.assert_allclose(
            v.voxel_to_world(np.array([1.0, 1.0, 1.0])), [2.0, 2.0, 2.5]
        )

    def test_translation(self):
        aff = np.eye(4)
        aff[:3, 3] = [10, 20, 30]
        v = Volume(np.zeros((3, 3, 3)), affine=aff)
        np.testing.assert_allclose(v.voxel_to_world(np.zeros(3)), [10, 20, 30])

    def test_rejects_bad_trailing_dim(self):
        v = make_vol()
        with pytest.raises(DataError):
            v.voxel_to_world(np.zeros((5, 2)))
        with pytest.raises(DataError):
            v.world_to_voxel(np.zeros((5, 4)))

    def test_contains(self):
        v = make_vol(shape=(4, 5, 6))
        inside = np.array([[0.0, 0.0, 0.0], [3.4, 4.4, 5.4], [-0.5, 0, 0]])
        outside = np.array([[3.6, 0, 0], [0, 4.6, 0], [0, 0, -0.6]])
        assert v.contains(inside).all()
        assert not v.contains(outside).any()


class TestIndexing:
    def test_flat_round_trip(self):
        v = make_vol(shape=(4, 5, 6))
        ijk = np.array([[0, 0, 0], [3, 4, 5], [1, 2, 3]])
        flat = v.flat_index(ijk)
        np.testing.assert_array_equal(v.unravel_index(flat), ijk)

    def test_flat_index_row_major(self):
        v = make_vol(shape=(4, 5, 6))
        assert v.flat_index(np.array([0, 0, 1])) == 1
        assert v.flat_index(np.array([0, 1, 0])) == 6
        assert v.flat_index(np.array([1, 0, 0])) == 30

    def test_out_of_bounds_rejected(self):
        v = make_vol(shape=(4, 5, 6))
        with pytest.raises(DataError):
            v.flat_index(np.array([4, 0, 0]))
        with pytest.raises(DataError):
            v.unravel_index(np.array([120]))


class TestConvenience:
    def test_with_data_shares_affine(self):
        v = make_vol()
        w = v.with_data(np.ones((2, 2, 2)))
        np.testing.assert_allclose(w.affine, v.affine)
        assert w.shape3 == (2, 2, 2)

    def test_astype(self):
        v = make_vol()
        assert v.astype(np.float32).data.dtype == np.float32
