"""Coverage for smaller public surfaces not exercised elsewhere."""

import numpy as np
import pytest

from repro import __version__
from repro.data import straight_bundle, rasterize_bundles
from repro.mcmc.sampler import MCMCResult
from repro.models import MultiFiberModel
from repro.models.base import DiffusionModel
from repro.models.fields import FiberField
from repro.pipeline import tracto
from repro.tracking import (
    ProbtrackConfig,
    TerminationCriteria,
    UniformStrategy,
    probabilistic_streamlining,
)


class TestPackageSurface:
    def test_version_string(self):
        assert __version__ == "1.0.0"

    def test_model_abc_contract(self):
        model = MultiFiberModel(2)
        assert isinstance(model, DiffusionModel)
        assert model.n_params == len(model.param_names) == 8


class TestFiberFieldSurface:
    def make(self):
        shape = (4, 4, 4)
        f = np.zeros(shape + (2,))
        f[..., 0] = 0.5
        d = np.zeros(shape + (2, 3))
        d[..., 0, 2] = 1.0
        return FiberField(f=f, directions=d, mask=np.ones(shape, bool))

    def test_properties(self):
        fld = self.make()
        assert fld.shape3 == (4, 4, 4)
        assert fld.n_fibers == 2
        assert fld.n_valid == 64
        # f (64*2*8) + directions (64*6*8) + mask (64)
        assert fld.memory_bytes() == 64 * 2 * 8 + 64 * 6 * 8 + 64

    def test_shape_validation(self):
        from repro.errors import DataError

        with pytest.raises(DataError):
            FiberField(
                f=np.zeros((4, 4, 4, 2)),
                directions=np.zeros((4, 4, 4, 2, 2)),
                mask=np.ones((4, 4, 4), bool),
            )
        with pytest.raises(DataError):
            FiberField(
                f=np.full((2, 2, 2, 2), 0.6),  # sums over 1
                directions=np.zeros((2, 2, 2, 2, 3)),
                mask=np.ones((2, 2, 2), bool),
            )


class TestMcmcResultSurface:
    def test_mean(self):
        samples = np.stack([np.zeros((2, 3)), np.full((2, 3), 2.0)])
        res = MCMCResult(samples=samples, n_loops=1, n_voxels=2, n_params=3)
        np.testing.assert_allclose(res.mean(), 1.0)


class TestTractoWithRawFields:
    def test_accepts_field_list(self):
        shape = (14, 6, 6)
        b = straight_bundle([1, 3, 3], [12, 3, 3], radius=1.5)
        field = rasterize_bundles(shape, [b], mask=np.ones(shape, bool))
        cfg = ProbtrackConfig(
            criteria=TerminationCriteria(max_steps=60, step_length=0.5),
            strategy=UniformStrategy(10),
        )
        result = tracto([field, field], config=cfg)
        assert result.run.n_samples == 2
        assert result.run.total_steps > 0


class TestDegenerateLengthFit:
    def test_length_fit_none_when_degenerate(self):
        # One seed, one sample: far too few fibers to fit an exponential.
        shape = (6, 6, 6)
        f = np.zeros(shape + (1,))
        d = np.zeros(shape + (1, 3))
        field = FiberField(f=f, directions=d, mask=np.ones(shape, bool))
        cfg = ProbtrackConfig(
            criteria=TerminationCriteria(max_steps=10),
            strategy=UniformStrategy(5),
            accumulate_connectivity=False,
        )
        res = probabilistic_streamlining(
            [field], config=cfg, seeds=np.array([[3.0, 3.0, 3.0]])
        )
        assert res.length_fit is None


class TestBundleSurface:
    def test_tangents_unit_norm(self):
        b = straight_bundle([0, 0, 0], [3, 4, 0], n_points=10)
        t = b.tangents
        np.testing.assert_allclose(np.linalg.norm(t, axis=1), 1.0)
        np.testing.assert_allclose(t[0], [0.6, 0.8, 0.0])

    def test_length_of_diagonal(self):
        b = straight_bundle([0, 0, 0], [3, 4, 0])
        assert b.length == pytest.approx(5.0)


class TestTrackingRunResultSurface:
    def test_empty_lengths_longest_zero(self):
        from repro.gpu import Timeline
        from repro.tracking.executor import TrackingRunResult

        res = TrackingRunResult(
            lengths=np.zeros((0, 0), dtype=np.int64),
            reasons=np.zeros((0, 0), dtype=np.int64),
            timeline=Timeline(),
        )
        assert res.longest_fiber == 0
        assert res.total_steps == 0
        assert res.speedup == float("inf") or res.speedup >= 0
