"""Tests for the ASCII Gantt renderer (repro.analysis.gantt)."""

import pytest

from repro.analysis import render_gantt
from repro.errors import DeviceError
from repro.gpu import Timeline


def make_timeline():
    tl = Timeline()
    tl.add("transfer", "up", 1.0, stream=0)
    tl.add("kernel", "k0", 2.0, stream=0)
    tl.add("reduction", "r0", 1.0, stream=0)
    return tl


class TestGantt:
    def test_rows_and_glyphs(self):
        out = render_gantt(make_timeline(), width=40, schedule="serial")
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("device")
        assert "K" in lines[1]
        assert "=" in lines[2]
        assert "r" in lines[3]

    def test_serial_positions_ordered(self):
        out = render_gantt(make_timeline(), width=40, schedule="serial")
        device = out.splitlines()[1]
        bus = out.splitlines()[2]
        host = out.splitlines()[3]
        # transfer first, then kernel, then reduction.
        assert bus.index("=") < device.index("K") < host.index("r")

    def test_total_in_header(self):
        out = render_gantt(make_timeline(), width=40, schedule="serial")
        assert "4.0000s" in out

    def test_overlapped_schedule_differs(self):
        tl = Timeline()
        tl.add("kernel", "k0", 2.0, stream=0)
        tl.add("kernel", "k1", 2.0, stream=1)
        tl.add("reduction", "r0", 2.0, stream=0)
        serial = render_gantt(tl, width=40, schedule="serial")
        over = render_gantt(tl, width=40, schedule="overlapped")
        assert "6.0000s" in serial
        assert "4.0000s" in over  # r0 hides under k1

    def test_empty_timeline(self):
        assert "empty" in render_gantt(Timeline())

    def test_validation(self):
        with pytest.raises(DeviceError):
            render_gantt(make_timeline(), width=2)
        with pytest.raises(DeviceError):
            render_gantt(make_timeline(), schedule="magic")

    def test_short_events_still_visible(self):
        tl = Timeline()
        tl.add("kernel", "big", 100.0)
        tl.add("reduction", "tiny", 1e-6)
        out = render_gantt(tl, width=50, schedule="serial")
        assert "r" in out.splitlines()[3]
