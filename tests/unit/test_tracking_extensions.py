"""Tests for tracking extensions: explicit headings, bidirectional seeding."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.models.fields import FiberField
from repro.tracking import (
    ConnectivityAccumulator,
    ProbtrackConfig,
    SegmentedTracker,
    TerminationCriteria,
    UniformStrategy,
    paper_strategy_b,
    probabilistic_streamlining,
)


def uniform_x_field(shape=(20, 8, 8), f=0.6):
    fr = np.zeros(shape + (2,))
    fr[..., 0] = f
    dirs = np.zeros(shape + (2, 3))
    dirs[..., 0, 0] = 1.0
    return FiberField(f=fr, directions=dirs, mask=np.ones(shape, bool))


class TestExplicitHeadings:
    def test_headings_control_direction(self):
        field = uniform_x_field()
        crit = TerminationCriteria(max_steps=200, step_length=0.5)
        seeds = np.array([[10.0, 4.0, 4.0]])
        tracker = SegmentedTracker()
        fwd = tracker.run(
            [field], seeds, crit, paper_strategy_b(),
            headings=np.array([[1.0, 0.0, 0.0]]),
        )
        bwd = tracker.run(
            [field], seeds, crit, paper_strategy_b(),
            headings=np.array([[-1.0, 0.0, 0.0]]),
        )
        # Forward has ~9 voxels of track, backward ~10 (grid 20 long).
        assert fwd.lengths[0, 0] != bwd.lengths[0, 0]
        assert fwd.lengths[0, 0] + bwd.lengths[0, 0] == pytest.approx(
            (20 - 1) / 0.5, abs=4
        )

    def test_headings_shape_validated(self):
        field = uniform_x_field()
        crit = TerminationCriteria(max_steps=10)
        with pytest.raises(TrackingError, match="headings"):
            SegmentedTracker().run(
                [field], np.zeros((2, 3)), crit, paper_strategy_b(),
                headings=np.zeros((3, 3)),
            )

    def test_heading_signs_flip_defaults(self):
        field = uniform_x_field()
        crit = TerminationCriteria(max_steps=200, step_length=0.5)
        seeds = np.array([[10.0, 4.0, 4.0], [10.0, 5.0, 5.0]])
        tracker = SegmentedTracker()
        plus = tracker.run(
            [field], seeds, crit, paper_strategy_b(),
            heading_signs=np.array([1.0, 1.0]),
        )
        minus = tracker.run(
            [field], seeds, crit, paper_strategy_b(),
            heading_signs=np.array([-1.0, -1.0]),
        )
        assert not np.array_equal(plus.lengths, minus.lengths)

    def test_heading_signs_shape_validated(self):
        field = uniform_x_field()
        crit = TerminationCriteria(max_steps=10)
        with pytest.raises(TrackingError, match="heading_signs"):
            SegmentedTracker().run(
                [field], np.zeros((2, 3)), crit, paper_strategy_b(),
                heading_signs=np.ones(3),
            )


class TestBidirectional:
    def test_doubles_threads_and_covers_both_senses(self):
        field = uniform_x_field()
        cfg = ProbtrackConfig(
            criteria=TerminationCriteria(max_steps=200, step_length=0.5),
            strategy=UniformStrategy(20),
            bidirectional=True,
        )
        seeds = np.array([[10.0, 4.0, 4.0]])
        res = probabilistic_streamlining([field], config=cfg, seeds=seeds)
        assert res.run.n_seeds == 2  # two launch threads for one seed
        total = res.run.lengths[0].sum()
        assert total == pytest.approx((20 - 1) / 0.5, abs=4)

    def test_connectivity_merges_senses(self):
        field = uniform_x_field()
        cfg_bi = ProbtrackConfig(
            criteria=TerminationCriteria(max_steps=200, step_length=0.5),
            strategy=UniformStrategy(20),
            bidirectional=True,
        )
        cfg_uni = ProbtrackConfig(
            criteria=cfg_bi.criteria,
            strategy=UniformStrategy(20),
            bidirectional=False,
        )
        seeds = np.array([[10.0, 4.0, 4.0]])
        bi = probabilistic_streamlining([field], config=cfg_bi, seeds=seeds)
        uni = probabilistic_streamlining([field], config=cfg_uni, seeds=seeds)
        p_bi = bi.connectivity_probability
        p_uni = uni.connectivity_probability
        assert p_bi.shape == (1, int(np.prod(field.shape3)))
        # Bidirectional reaches a superset of voxels from the same seed.
        assert p_bi.nnz > p_uni.nnz
        assert bi.connectivity.n_samples == 1

    def test_bidirectional_on_mask_seeds(self):
        field = uniform_x_field()
        cfg = ProbtrackConfig(
            criteria=TerminationCriteria(max_steps=100, step_length=0.5),
            strategy=UniformStrategy(20),
            bidirectional=True,
        )
        mask = np.zeros(field.shape3, bool)
        mask[5, 4, 4] = mask[10, 4, 4] = True
        res = probabilistic_streamlining([field], config=cfg, seed_mask=mask)
        assert res.run.n_seeds == 4
        assert res.connectivity.n_seeds == 2


class TestSeedMapAccumulator:
    def test_seed_map_folds_rows(self):
        acc = ConnectivityAccumulator(2, 10, seed_map=np.array([0, 1, 0, 1]))
        acc.begin_sample()
        acc.visit(np.array([0, 2]), np.array([3, 4]))  # both map to seed 0
        acc.end_sample()
        p = acc.probability()
        assert p[0, 3] == 1.0 and p[0, 4] == 1.0
        assert p[1].nnz == 0

    def test_seed_map_validation(self):
        with pytest.raises(TrackingError):
            ConnectivityAccumulator(2, 10, seed_map=np.array([0, 5]))
        acc = ConnectivityAccumulator(2, 10, seed_map=np.array([0, 1]))
        acc.begin_sample()
        with pytest.raises(TrackingError, match="seed_map range"):
            acc.visit(np.array([2]), np.array([0]))
