"""Unit tests for interpolation, direction choice, criteria, and trackers."""

import numpy as np
import pytest

from repro.data import rasterize_bundles, straight_bundle, arc_bundle
from repro.errors import ConfigurationError, TrackingError
from repro.models.fields import FiberField
from repro.tracking import (
    BatchTracker,
    StopReason,
    TerminationCriteria,
    choose_direction,
    initial_directions,
    nearest_lookup,
    track_streamline,
    trilinear_lookup,
)
from repro.tracking.interpolate import trilinear_lookup_reference


def uniform_x_field(shape=(12, 6, 6), f=0.6):
    """A field whose every voxel has one +x fiber."""
    fr = np.zeros(shape + (2,))
    fr[..., 0] = f
    dirs = np.zeros(shape + (2, 3))
    dirs[..., 0, 0] = 1.0
    return FiberField(f=fr, directions=dirs, mask=np.ones(shape, bool))


def crossing_field(shape=(10, 10, 4)):
    """Every voxel has +x and +y populations."""
    fr = np.full(shape + (2,), 0.4)
    dirs = np.zeros(shape + (2, 3))
    dirs[..., 0, 0] = 1.0
    dirs[..., 1, 1] = 1.0
    return FiberField(f=fr, directions=dirs, mask=np.ones(shape, bool))


class TestNearestLookup:
    def test_rounds_to_voxel(self):
        field = uniform_x_field()
        f, d = nearest_lookup(field, np.array([[3.4, 2.6, 2.2]]))
        assert f[0, 0] == 0.6
        np.testing.assert_allclose(d[0, 0], [1, 0, 0])

    def test_clamps_outside(self):
        field = uniform_x_field()
        f, d = nearest_lookup(field, np.array([[-5.0, 2.0, 2.0], [50.0, 2.0, 2.0]]))
        assert np.all(f[:, 0] == 0.6)

    def test_shape_validation(self):
        with pytest.raises(TrackingError):
            nearest_lookup(uniform_x_field(), np.zeros((3, 2)))


class TestTrilinearLookup:
    def test_matches_nearest_at_centers(self):
        field = uniform_x_field()
        pts = np.array([[3.0, 2.0, 2.0], [5.0, 4.0, 1.0]])
        f_n, d_n = nearest_lookup(field, pts)
        f_t, d_t = trilinear_lookup(field, pts, reference=np.tile([1.0, 0, 0], (2, 1)))
        np.testing.assert_allclose(f_t, f_n, atol=1e-12)
        np.testing.assert_allclose(np.abs(d_t[:, 0] @ [1, 0, 0]), 1.0, atol=1e-12)

    def test_fraction_interpolates_linearly(self):
        shape = (4, 3, 3)
        fr = np.zeros(shape + (1,))
        fr[0] = 0.2
        fr[1] = 0.6
        dirs = np.zeros(shape + (1, 3))
        dirs[..., 0, 2] = 1.0
        field = FiberField(f=fr, directions=dirs, mask=np.ones(shape, bool))
        f, _ = trilinear_lookup(field, np.array([[0.25, 1.0, 1.0]]))
        assert f[0, 0] == pytest.approx(0.2 * 0.75 + 0.6 * 0.25)

    def test_sign_alignment_prevents_cancellation(self):
        # Adjacent voxels hold antipodal directions of the same axis; a
        # naive average cancels, the axial-aware one must not.
        shape = (2, 1, 1)
        fr = np.full(shape + (1,), 0.5)
        dirs = np.zeros(shape + (1, 3))
        dirs[0, 0, 0, 0] = [1.0, 0.0, 0.0]
        dirs[1, 0, 0, 0] = [-1.0, 0.0, 0.0]
        field = FiberField(f=fr, directions=dirs, mask=np.ones(shape, bool))
        _, d = trilinear_lookup(
            field, np.array([[0.5, 0.0, 0.0]]), reference=np.array([[1.0, 0.0, 0.0]])
        )
        np.testing.assert_allclose(np.abs(d[0, 0, 0]), 1.0, atol=1e-9)

    def test_unit_norm_output(self):
        field = crossing_field()
        rng = np.random.default_rng(0)
        pts = rng.uniform(1, 8, size=(40, 3))
        ref = np.tile([1.0, 0.0, 0.0], (40, 1))
        _, d = trilinear_lookup(field, pts, reference=ref)
        norms = np.linalg.norm(d, axis=-1)
        np.testing.assert_allclose(norms[norms > 0], 1.0, atol=1e-9)

    def test_reference_shape_validated(self):
        with pytest.raises(TrackingError):
            trilinear_lookup(
                uniform_x_field(), np.zeros((2, 3)), reference=np.zeros((3, 3))
            )

    def test_packed_gather_matches_reference_bitwise(self):
        """The optimized packed gather is the reference spec, exactly."""
        field = crossing_field()
        rng = np.random.default_rng(3)
        # Interior, boundary, and out-of-grid points (clamp path).
        pts = rng.uniform(-2.0, 12.0, size=(200, 3))
        ref = rng.normal(size=(200, 3))
        ref /= np.linalg.norm(ref, axis=1, keepdims=True)
        for reference in (None, ref):
            f_opt, d_opt = trilinear_lookup(field, pts, reference=reference)
            f_ref, d_ref = trilinear_lookup_reference(
                field, pts, reference=reference
            )
            assert np.array_equal(f_opt, f_ref)
            assert np.array_equal(d_opt, d_ref)

    def test_batch_tracker_reference_mode_identical(self):
        """Full batch runs agree bitwise between optimized and spec modes."""
        field = crossing_field()
        crit = TerminationCriteria(max_steps=60, min_dot=0.6, step_length=0.3)
        seeds = np.argwhere(field.mask)[::7].astype(np.float64)
        headings = np.tile([1.0, 0.0, 0.0], (len(seeds), 1))
        runs = {}
        for mode in ("trilinear", "trilinear-reference"):
            state = BatchTracker(field, crit, interpolation=mode).run_to_completion(
                seeds, headings
            )
            runs[mode] = (state.steps.copy(), state.reason.copy())
        assert np.array_equal(runs["trilinear"][0], runs["trilinear-reference"][0])
        assert np.array_equal(runs["trilinear"][1], runs["trilinear-reference"][1])


class TestChooseDirection:
    def test_picks_most_parallel(self):
        field = crossing_field()
        f, dirs = nearest_lookup(field, np.array([[5.0, 5.0, 2.0]]))
        chosen, dot = choose_direction(f, dirs, np.array([[0.9, 0.1, 0.0]]))
        np.testing.assert_allclose(chosen[0], [1, 0, 0], atol=1e-12)
        heading_y = np.array([[0.1, 0.9, 0.0]])
        chosen, _ = choose_direction(f, dirs, heading_y / np.linalg.norm(heading_y))
        np.testing.assert_allclose(chosen[0], [0, 1, 0], atol=1e-12)

    def test_sign_alignment(self):
        field = uniform_x_field()
        f, dirs = nearest_lookup(field, np.array([[5.0, 2.0, 2.0]]))
        chosen, dot = choose_direction(f, dirs, np.array([[-1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(chosen[0], [-1, 0, 0])
        assert dot[0] == pytest.approx(1.0)

    def test_threshold_excludes_weak_population(self):
        f = np.array([[0.5, 0.04]])
        dirs = np.zeros((1, 2, 3))
        dirs[0, 0] = [1, 0, 0]
        dirs[0, 1] = [0, 1, 0]
        heading = np.array([[0.0, 1.0, 0.0]])  # prefers the weak one
        chosen, _ = choose_direction(f, dirs, heading, f_threshold=0.05)
        np.testing.assert_allclose(np.abs(chosen[0]), [1, 0, 0])

    def test_no_population_returns_zero(self):
        f = np.zeros((1, 2))
        dirs = np.zeros((1, 2, 3))
        chosen, dot = choose_direction(f, dirs, np.array([[1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(chosen, 0.0)
        assert dot[0] == 0.0

    def test_shape_validation(self):
        with pytest.raises(TrackingError):
            choose_direction(np.zeros((2, 2)), np.zeros((2, 2, 3)), np.zeros((3, 3)))

    def test_initial_directions_strongest(self):
        f = np.array([[0.2, 0.5], [0.0, 0.0]])
        dirs = np.zeros((2, 2, 3))
        dirs[0, 0] = [1, 0, 0]
        dirs[0, 1] = [0, 0, 1]
        d = initial_directions(f, dirs)
        np.testing.assert_allclose(d[0], [0, 0, 1])
        np.testing.assert_allclose(d[1], 0.0)

    def test_initial_directions_sign(self):
        f = np.array([[0.5, 0.0]])
        dirs = np.zeros((1, 2, 3))
        dirs[0, 0] = [0, 1, 0]
        np.testing.assert_allclose(initial_directions(f, dirs, sign=-1)[0], [0, -1, 0])
        with pytest.raises(TrackingError):
            initial_directions(f, dirs, sign=0)


class TestCriteria:
    def test_defaults_match_paper(self):
        c = TerminationCriteria()
        assert c.max_steps == 1888  # sum of the Table II array
        assert c.f_threshold == 0.0  # anisotropy floor off, per § III-B3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_steps=0),
            dict(min_dot=1.5),
            dict(min_dot=-0.1),
            dict(step_length=0.0),
            dict(f_threshold=1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            TerminationCriteria(**kwargs)


class TestScalarTracker:
    def test_straight_run_to_mask_edge(self):
        field = uniform_x_field(shape=(12, 6, 6))
        crit = TerminationCriteria(max_steps=500, min_dot=0.8, step_length=0.5)
        line = track_streamline(field, [1.0, 3.0, 3.0], [1.0, 0.0, 0.0], crit)
        assert line.reason == StopReason.OUT_OF_BOUNDS
        # Travelled close to the +x boundary.
        assert line.end[0] > 10.5
        np.testing.assert_allclose(line.points[:, 1], 3.0, atol=1e-9)

    def test_max_steps(self):
        field = uniform_x_field(shape=(200, 4, 4))
        crit = TerminationCriteria(max_steps=10, step_length=0.5)
        line = track_streamline(field, [1.0, 2.0, 2.0], [1.0, 0.0, 0.0], crit)
        assert line.reason == StopReason.MAX_STEPS
        assert line.n_steps == 10

    def test_out_of_mask(self):
        shape = (12, 6, 6)
        field = uniform_x_field(shape)
        mask = field.mask.copy()
        mask[8:] = False
        field = FiberField(f=field.f, directions=field.directions, mask=mask)
        crit = TerminationCriteria(max_steps=100, step_length=0.5)
        line = track_streamline(field, [1.0, 3.0, 3.0], [1.0, 0.0, 0.0], crit)
        assert line.reason == StopReason.OUT_OF_MASK
        assert line.end[0] <= 7.5

    def test_angle_termination_at_orthogonal_boundary(self):
        # Left half fibers +x, right half +y: the turn at the boundary
        # violates min_dot and stops the path.
        shape = (10, 10, 4)
        fr = np.zeros(shape + (1,))
        fr[..., 0] = 0.6
        dirs = np.zeros(shape + (1, 3))
        dirs[:5, ..., 0, 0] = 1.0
        dirs[5:, ..., 0, 1] = 1.0
        field = FiberField(f=fr, directions=dirs, mask=np.ones(shape, bool))
        crit = TerminationCriteria(max_steps=100, min_dot=0.8, step_length=1.0)
        line = track_streamline(
            field, [1.0, 5.0, 2.0], [1.0, 0.0, 0.0], crit, interpolation="nearest"
        )
        assert line.reason == StopReason.ANGLE
        assert line.end[0] < 6.0

    def test_no_direction_at_empty_seed(self):
        shape = (6, 6, 6)
        fr = np.zeros(shape + (1,))
        dirs = np.zeros(shape + (1, 3))
        field = FiberField(f=fr, directions=dirs, mask=np.ones(shape, bool))
        crit = TerminationCriteria(max_steps=10)
        line = track_streamline(field, [3.0, 3.0, 3.0], [1.0, 0.0, 0.0], crit)
        assert line.reason == StopReason.NO_DIRECTION
        assert line.n_steps == 0

    def test_crossing_preserves_orientation(self):
        field = crossing_field()
        crit = TerminationCriteria(max_steps=50, min_dot=0.7, step_length=0.5)
        line_x = track_streamline(field, [1.0, 5.0, 2.0], [1.0, 0.0, 0.0], crit)
        # Straight through the crossing along x; y must stay constant.
        np.testing.assert_allclose(line_x.points[:, 1], 5.0, atol=1e-6)
        line_y = track_streamline(field, [5.0, 1.0, 2.0], [0.0, 1.0, 0.0], crit)
        np.testing.assert_allclose(line_y.points[:, 0], 5.0, atol=1e-6)

    def test_follows_arc(self):
        shape = (8, 40, 40)
        arc = arc_bundle(
            center=[4, 20, 8], radius_of_curvature=12.0, plane="yz", tube_radius=2.0
        )
        field = rasterize_bundles(shape, [arc], mask=np.ones(shape, bool))
        crit = TerminationCriteria(max_steps=2000, min_dot=0.95, step_length=0.2)
        # Seed at the arc apex, heading +y.
        line = track_streamline(field, [4.0, 20.0, 20.0], [0.0, 1.0, 0.0], crit)
        assert line.n_steps > 50
        # The path must descend in z (following the arch down).
        assert line.end[2] < 16.0
        # And stay near the arc radius.
        r = np.linalg.norm(line.points[:, 1:] - [20.0, 8.0], axis=1)
        assert np.all(np.abs(r - 12.0) < 3.0)

    def test_visited_voxels(self):
        field = uniform_x_field(shape=(12, 6, 6))
        crit = TerminationCriteria(max_steps=100, step_length=0.5)
        line = track_streamline(field, [1.0, 3.0, 3.0], [1.0, 0.0, 0.0], crit)
        visited = line.visited_voxels((12, 6, 6))
        assert len(visited) >= 10
        assert len(np.unique(visited)) == len(visited)

    def test_bad_interpolation_rejected(self):
        with pytest.raises(TrackingError):
            track_streamline(
                uniform_x_field(), [1, 1, 1], [1, 0, 0],
                TerminationCriteria(), interpolation="cubic",
            )


class TestBatchTracker:
    def make_setup(self, shape=(16, 8, 8)):
        field = uniform_x_field(shape)
        crit = TerminationCriteria(max_steps=200, min_dot=0.8, step_length=0.5)
        return field, crit

    def test_matches_scalar_reference_uniform(self):
        field, crit = self.make_setup()
        seeds = np.array([[1.0, 3.0, 3.0], [2.0, 4.0, 5.0], [14.0, 2.0, 2.0]])
        headings = np.tile([1.0, 0.0, 0.0], (3, 1))
        tracker = BatchTracker(field, crit)
        state = tracker.run_to_completion(seeds, headings)
        for i in range(3):
            ref = track_streamline(field, seeds[i], headings[i], crit)
            assert state.steps[i] == ref.n_steps
            assert state.reason[i] == ref.reason
            np.testing.assert_allclose(state.positions[i], ref.end, atol=1e-9)

    def test_matches_scalar_reference_phantom(self):
        # Real phantom geometry with curvature and crossings.
        shape = (8, 30, 30)
        arc = arc_bundle(
            center=[4, 15, 6], radius_of_curvature=9.0, plane="yz", tube_radius=2.0
        )
        line_b = straight_bundle([4, 2, 12], [4, 28, 12], radius=1.5, weight=0.45)
        field = rasterize_bundles(shape, [arc, line_b], mask=np.ones(shape, bool))
        crit = TerminationCriteria(max_steps=300, min_dot=0.85, step_length=0.3)
        rng = np.random.default_rng(1)
        wm = np.argwhere(field.f[..., 0] > 0)
        seeds = wm[rng.choice(len(wm), size=20, replace=False)].astype(float)
        from repro.tracking import nearest_lookup as nl, initial_directions as idirs

        f, d = nl(field, seeds)
        headings = idirs(f, d)
        tracker = BatchTracker(field, crit)
        state = tracker.run_to_completion(seeds, headings)
        for i in range(len(seeds)):
            ref = track_streamline(field, seeds[i], headings[i], crit)
            assert state.steps[i] == ref.n_steps, f"seed {i}"
            assert state.reason[i] == ref.reason, f"seed {i}"
            np.testing.assert_allclose(state.positions[i], ref.end, atol=1e-8)

    def test_segment_bounding(self):
        field, crit = self.make_setup(shape=(64, 8, 8))
        seeds = np.array([[1.0, 4.0, 4.0]])
        headings = np.array([[1.0, 0.0, 0.0]])
        tracker = BatchTracker(field, crit)
        state = tracker.init_state(seeds, headings)
        executed = tracker.run_segment(state, 10)
        assert executed[0] == 10
        assert state.steps[0] == 10
        assert state.active[0]

    def test_segmented_equals_monolithic(self):
        field, crit = self.make_setup()
        rng = np.random.default_rng(2)
        seeds = rng.uniform(1, 6, size=(10, 3))
        seeds[:, 0] = rng.uniform(1, 14, size=10)
        headings = np.tile([1.0, 0.0, 0.0], (10, 1))
        tracker = BatchTracker(field, crit)

        mono = tracker.run_to_completion(seeds, headings)
        seg_state = tracker.init_state(seeds, headings)
        for n in [1, 2, 5, 10, 20, 50, 100, 200]:
            tracker.run_segment(seg_state, n)
        np.testing.assert_array_equal(seg_state.steps, mono.steps)
        np.testing.assert_array_equal(seg_state.reason, mono.reason)
        np.testing.assert_allclose(seg_state.positions, mono.positions, atol=1e-12)

    def test_executed_counts_stop_iteration(self):
        # A thread stopping at its k-th iteration executed k iterations.
        shape = (6, 4, 4)
        field = uniform_x_field(shape)
        crit = TerminationCriteria(max_steps=100, step_length=1.0)
        tracker = BatchTracker(field, crit)
        state = tracker.init_state(
            np.array([[4.0, 2.0, 2.0]]), np.array([[1.0, 0.0, 0.0]])
        )
        executed = tracker.run_segment(state, 50)
        # Steps: 4->5 ok (step 1), 5->6 out of bounds (iteration 2 stops).
        assert state.steps[0] == 1
        assert executed[0] == 2
        assert state.reason[0] == StopReason.OUT_OF_BOUNDS

    def test_compaction_preserves_origin(self):
        field, crit = self.make_setup()
        seeds = np.array([[14.5, 4.0, 4.0], [1.0, 4.0, 4.0]])  # first dies fast
        headings = np.tile([1.0, 0.0, 0.0], (2, 1))
        tracker = BatchTracker(field, crit)
        state = tracker.init_state(seeds, headings)
        tracker.run_segment(state, 5)
        assert not state.active[0] and state.active[1]
        compacted = state.compact()
        assert compacted.n_threads == 1
        assert compacted.origin[0] == 1

    def test_dead_seed_starts_terminated(self):
        field, crit = self.make_setup()
        tracker = BatchTracker(field, crit)
        state = tracker.init_state(
            np.array([[1.0, 3.0, 3.0]]), np.array([[0.0, 0.0, 0.0]])
        )
        assert state.reason[0] == StopReason.NO_DIRECTION
        assert state.n_active == 0

    def test_visit_callback_receives_moves(self):
        field, crit = self.make_setup()
        tracker = BatchTracker(field, crit)
        state = tracker.init_state(
            np.array([[1.0, 3.0, 3.0]]), np.array([[1.0, 0.0, 0.0]])
        )
        visits = []
        tracker.run_segment(state, 4, lambda o, v: visits.append((o.copy(), v.copy())))
        # Visits are batched per segment (the modeled readback granularity),
        # one entry per executed move regardless of callback cadence.
        origins = np.concatenate([o for o, _ in visits])
        voxels = np.concatenate([v for _, v in visits])
        assert origins.shape == voxels.shape == (4,)
        assert np.all(origins == 0)
        assert np.all((voxels >= 0) & (voxels < 16 * 8 * 8))

    def test_validation(self):
        field, crit = self.make_setup()
        with pytest.raises(TrackingError):
            BatchTracker(field, crit, interpolation="spline")
        tracker = BatchTracker(field, crit)
        with pytest.raises(TrackingError):
            tracker.init_state(np.zeros((2, 3)), np.zeros((3, 3)))
        state = tracker.init_state(np.ones((1, 3)), np.ones((1, 3)))
        with pytest.raises(TrackingError):
            tracker.run_segment(state, -1)

    def test_payload_sizes(self):
        field, crit = self.make_setup()
        tracker = BatchTracker(field, crit)
        state = tracker.init_state(np.ones((10, 3)), np.ones((10, 3)))
        assert state.payload_bytes_down() == 280
        assert state.payload_bytes_up() == 320
