"""Unit tests for repro.utils.validation and profiling helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError, ReproError
from repro.utils import (
    Stopwatch,
    TimingAccumulator,
    check_array,
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
    check_unit_vector,
)


class TestChecks:
    def test_check_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_check_positive_rejects(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", 0.0)
        with pytest.raises(ConfigurationError):
            check_positive("x", -1.0, strict=False)

    def test_check_in_range(self):
        assert check_in_range("y", 0.5, 0, 1) == 0.5
        assert check_in_range("y", 0.0, 0, 1) == 0.0
        with pytest.raises(ConfigurationError, match="y"):
            check_in_range("y", 0.0, 0, 1, inclusive=False)
        with pytest.raises(ConfigurationError):
            check_in_range("y", 2.0, 0, 1)

    def test_check_probability(self):
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.01)

    def test_check_array_ndim(self):
        arr = check_array("a", [[1.0, 2.0]], ndim=2)
        assert arr.shape == (1, 2)
        with pytest.raises(DataError, match="ndim"):
            check_array("a", [1.0], ndim=2)

    def test_check_array_finite(self):
        with pytest.raises(DataError, match="non-finite"):
            check_array("a", [np.nan], finite=True)

    def test_check_array_dtype_cast(self):
        arr = check_array("a", [1, 2], dtype=np.float64)
        assert arr.dtype == np.float64

    def test_check_shape_wildcards(self):
        arr = check_shape("s", np.zeros((4, 3)), (None, 3))
        assert arr.shape == (4, 3)
        with pytest.raises(DataError):
            check_shape("s", np.zeros((4, 2)), (None, 3))
        with pytest.raises(DataError):
            check_shape("s", np.zeros(4), (None, 3))

    def test_check_unit_vector(self):
        check_unit_vector("v", np.array([[0.0, 0.0, 1.0]]))
        with pytest.raises(DataError, match="unit"):
            check_unit_vector("v", np.array([[0.0, 0.0, 2.0]]))
        with pytest.raises(DataError):
            check_unit_vector("v", np.array([[0.0, 1.0]]))

    def test_errors_share_base(self):
        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(DataError, ReproError)
        # Library errors remain catchable as stdlib categories too.
        assert issubclass(ConfigurationError, ValueError)


class TestProfiling:
    def test_stopwatch_measures(self):
        with Stopwatch() as sw:
            sum(range(100))
        assert sw.elapsed >= 0.0

    def test_accumulator_sections(self):
        acc = TimingAccumulator()
        with acc.section("a"):
            pass
        with acc.section("a"):
            pass
        assert acc.counts["a"] == 2
        assert acc.totals["a"] >= 0.0

    def test_accumulator_merge(self):
        a, b = TimingAccumulator(), TimingAccumulator()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.totals == {"x": 3.0, "y": 3.0}
        assert a.counts == {"x": 2, "y": 1}

    def test_summary_renders(self):
        acc = TimingAccumulator()
        assert "no sections" in acc.summary()
        acc.add("kernel", 1.25)
        assert "kernel" in acc.summary()
