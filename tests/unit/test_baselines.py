"""Unit tests for repro.baselines."""

import numpy as np
import pytest

from repro.data import (
    crossing_pair,
    make_gradient_table,
    rasterize_bundles,
    straight_bundle,
    synthesize_dwi,
)
from repro.baselines import (
    PointEstimateModel,
    cpu_probabilistic_tracking,
    deterministic_tractography,
)
from repro.baselines.deterministic import tensor_field
from repro.errors import DataError, TrackingError
from repro.models.fields import FiberField
from repro.tracking import (
    SegmentedTracker,
    TerminationCriteria,
    paper_strategy_b,
    seeds_from_mask,
)


@pytest.fixture(scope="module")
def straight_phantom():
    shape = (20, 8, 8)
    b = straight_bundle([2, 4, 4], [17, 4, 4], radius=2.0, weight=0.65)
    field = rasterize_bundles(shape, [b], mask=np.ones(shape, bool))
    gtab = make_gradient_table(n_directions=32, n_b0=3)
    dwi = synthesize_dwi(field, gtab, snr=40.0, seed=0)
    return field, gtab, dwi


@pytest.fixture(scope="module")
def crossing_phantom():
    shape = (24, 24, 8)
    b1, b2 = crossing_pair([12, 12, 4], 10.0, angle=np.pi / 2, radius=2.0, weight=0.45)
    field = rasterize_bundles(shape, [b1, b2], mask=np.ones(shape, bool))
    gtab = make_gradient_table(n_directions=32, n_b0=3)
    dwi = synthesize_dwi(field, gtab, snr=40.0, seed=1)
    return field, gtab, dwi


class TestTensorField:
    def test_fa_high_in_bundle(self, straight_phantom):
        truth, gtab, dwi = straight_phantom
        field, fit = tensor_field(dwi, gtab, truth.mask)
        in_bundle = truth.f[..., 0] > 0.5
        assert field.f[in_bundle, 0].mean() > 0.3
        outside = truth.mask & (truth.f[..., 0] == 0)
        assert field.f[outside, 0].mean() < field.f[in_bundle, 0].mean()

    def test_direction_recovered(self, straight_phantom):
        truth, gtab, dwi = straight_phantom
        field, _ = tensor_field(dwi, gtab, truth.mask)
        center = field.directions[10, 4, 4, 0]
        assert abs(center[0]) > 0.98

    def test_mask_shape_checked(self, straight_phantom):
        _, gtab, dwi = straight_phantom
        with pytest.raises(DataError):
            tensor_field(dwi, gtab, np.ones((2, 2, 2), bool))


class TestDeterministicTractography:
    def test_tracks_through_straight_bundle(self, straight_phantom):
        truth, gtab, dwi = straight_phantom
        seeds = np.array([[10.0, 4.0, 4.0]])
        res = deterministic_tractography(dwi, gtab, truth.mask, seeds)
        assert res.lengths[0] > 10
        assert res.wall_seconds > 0

    def test_fa_floor_terminates_outside_bundle(self, straight_phantom):
        truth, gtab, dwi = straight_phantom
        # Seed far from the bundle: low FA there, tracking dies instantly.
        seeds = np.array([[10.0, 1.0, 1.0]])
        res = deterministic_tractography(dwi, gtab, truth.mask, seeds)
        assert res.lengths[0] <= 3

    def test_fails_at_crossing(self, crossing_phantom):
        # The single-tensor model averages two orthogonal fiber
        # populations into an *oblate* (planar) tensor: the linear/planar
        # Westin coefficients flip, and the "principal" eigenvector
        # becomes direction-ambiguous within the crossing plane -- the
        # paper's motivation for the multi-fiber model (paper section I).
        truth, gtab, dwi = crossing_phantom
        _, fit = tensor_field(dwi, gtab, truth.mask)
        flat_mask = truth.mask.reshape(-1)
        crossing = (truth.f[..., 1] > 0.3).reshape(-1)[flat_mask]
        single = (
            (truth.f[..., 0] > 0.3) & (truth.f[..., 1] == 0)
        ).reshape(-1)[flat_mask]
        ev = fit.evals
        with np.errstate(invalid="ignore", divide="ignore"):
            cl = (ev[:, 0] - ev[:, 1]) / np.maximum(ev[:, 0], 1e-12)  # linear
            cp = (ev[:, 1] - ev[:, 2]) / np.maximum(ev[:, 0], 1e-12)  # planar
        assert cl[single].mean() > 2.0 * cl[crossing].mean()
        assert cp[crossing].mean() > 2.0 * cp[single].mean()


class TestCpuReference:
    def test_matches_segmented_executor(self, straight_phantom):
        truth, _, _ = straight_phantom
        crit = TerminationCriteria(max_steps=120, min_dot=0.8, step_length=0.4)
        seeds = seeds_from_mask(truth.mask & (truth.f[..., 0] > 0))[::9]
        cpu = cpu_probabilistic_tracking([truth, truth], seeds, crit)
        gpu = SegmentedTracker().run([truth, truth], seeds, crit, paper_strategy_b())
        np.testing.assert_array_equal(cpu.lengths, gpu.lengths)
        np.testing.assert_array_equal(cpu.reasons, gpu.reasons)

    def test_keep_streamlines(self, straight_phantom):
        truth, _, _ = straight_phantom
        crit = TerminationCriteria(max_steps=50, step_length=0.4)
        seeds = np.array([[10.0, 4.0, 4.0]])
        res = cpu_probabilistic_tracking(
            [truth], seeds, crit, keep_streamlines=True
        )
        assert res.streamlines is not None
        assert res.streamlines[0][0].n_steps == res.lengths[0, 0]
        assert res.total_steps == res.lengths.sum()

    def test_validation(self, straight_phantom):
        truth, _, _ = straight_phantom
        crit = TerminationCriteria(max_steps=10)
        with pytest.raises(TrackingError):
            cpu_probabilistic_tracking([], np.zeros((1, 3)), crit)
        with pytest.raises(TrackingError):
            cpu_probabilistic_tracking([truth], np.zeros((1, 2)), crit)


class TestPointEstimate:
    def test_sample_fields_structure(self, straight_phantom):
        truth, gtab, dwi = straight_phantom
        model = PointEstimateModel(dwi, gtab, truth.mask)
        fields = model.sample_fields(3, seed=0)
        assert len(fields) == 3
        for fld in fields:
            assert isinstance(fld, FiberField)
            assert fld.n_fibers == 1
            painted = fld.f[..., 0] > 0
            norms = np.linalg.norm(fld.directions[..., 0, :][painted], axis=-1)
            np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_samples_concentrate_around_estimate(self, straight_phantom):
        truth, gtab, dwi = straight_phantom
        model = PointEstimateModel(dwi, gtab, truth.mask)
        fields = model.sample_fields(20, seed=1)
        # In the bundle core, sampled directions must hug +/-x.
        aligns = [np.abs(f.directions[10, 4, 4, 0, 0]) for f in fields]
        assert np.mean(aligns) > 0.9

    def test_dispersion_scale_widens_samples(self, straight_phantom):
        truth, gtab, dwi = straight_phantom
        tight = PointEstimateModel(dwi, gtab, truth.mask, dispersion_scale=0.5)
        wide = PointEstimateModel(dwi, gtab, truth.mask, dispersion_scale=3.0)

        def spread(model):
            fields = model.sample_fields(15, seed=2)
            dirs = np.array([f.directions[10, 4, 4, 0] for f in fields])
            dirs *= np.sign(dirs[:, 0:1])
            return 1.0 - np.abs(dirs.mean(axis=0)[0])

        assert spread(wide) > spread(tight)

    def test_low_anisotropy_voxels_disperse_more(self, crossing_phantom):
        truth, gtab, dwi = crossing_phantom
        model = PointEstimateModel(dwi, gtab, truth.mask)
        # angular_std is larger where the tensor is degenerate (crossing).
        flat_mask = truth.mask.reshape(-1)
        crossing_flat = (truth.f[..., 1] > 0.3).reshape(-1)[flat_mask]
        single_flat = ((truth.f[..., 0] > 0.3) & (truth.f[..., 1] == 0)).reshape(-1)[
            flat_mask
        ]
        assert (
            model.angular_std[crossing_flat].mean()
            > model.angular_std[single_flat].mean()
        )

    def test_trackable_output(self, straight_phantom):
        truth, gtab, dwi = straight_phantom
        model = PointEstimateModel(dwi, gtab, truth.mask)
        fields = model.sample_fields(2, seed=3)
        crit = TerminationCriteria(
            max_steps=100, min_dot=0.8, step_length=0.4, f_threshold=0.15
        )
        seeds = np.array([[10.0, 4.0, 4.0]])
        res = SegmentedTracker().run(fields, seeds, crit, paper_strategy_b())
        assert res.lengths.max() > 5

    def test_validation(self, straight_phantom):
        truth, gtab, dwi = straight_phantom
        with pytest.raises(DataError):
            PointEstimateModel(dwi, gtab, np.ones((2, 2, 2), bool))
        with pytest.raises(DataError):
            PointEstimateModel(dwi, gtab, truth.mask, dispersion_scale=0.0)
        model = PointEstimateModel(dwi, gtab, truth.mask)
        with pytest.raises(DataError):
            model.sample_fields(0)
