"""Tests for the sample-archive contract (repro.io.samples)."""

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.io.samples import load_samples, save_samples
from repro.models.posterior import ParameterLayout


def make_archive_inputs(n_samples=3, n_fibers=2, seed=0):
    rng = np.random.default_rng(seed)
    mask = np.zeros((4, 3, 3), dtype=bool)
    mask[1, 1, 1] = mask[2, 1, 1] = mask[3, 2, 2] = True
    n_vox = int(mask.sum())
    layout = ParameterLayout(n_fibers)
    samples = np.zeros((n_samples, n_vox, layout.n_params))
    samples[:, :, 0] = 100.0  # s0
    samples[:, :, 1] = 1e-3   # d
    samples[:, :, 2] = 5.0    # sigma
    samples[:, :, layout.f] = rng.uniform(0.1, 0.4, (n_samples, n_vox, n_fibers))
    samples[:, :, layout.theta] = rng.uniform(0.2, np.pi - 0.2, (n_samples, n_vox, n_fibers))
    samples[:, :, layout.phi] = rng.uniform(0, 2 * np.pi, (n_samples, n_vox, n_fibers))
    affine = np.diag([2.0, 2.0, 2.0, 1.0])
    return samples, mask, layout, affine


class TestSampleArchive:
    def test_round_trip(self, tmp_path):
        samples, mask, layout, affine = make_archive_inputs()
        path = tmp_path / "samples.npz"
        save_samples(path, samples, mask, layout, 0.05, affine)
        back = load_samples(path)
        assert back.n_samples == 3
        assert back.n_voxels == 3
        assert back.layout.n_fibers == 2
        assert back.f_threshold == 0.05
        np.testing.assert_allclose(back.affine, affine)
        # float32 storage: agreement to single precision.
        np.testing.assert_allclose(back.samples, samples, rtol=1e-6)

    def test_to_fields(self, tmp_path):
        samples, mask, layout, affine = make_archive_inputs()
        path = tmp_path / "samples.npz"
        save_samples(path, samples, mask, layout, 0.05, affine)
        fields = load_samples(path).to_fields()
        assert len(fields) == 3
        assert fields[0].shape3 == mask.shape
        assert np.all(fields[0].f[~mask] == 0.0)
        assert fields[0].f[mask].max() > 0.05

    def test_save_validation(self, tmp_path):
        samples, mask, layout, affine = make_archive_inputs()
        with pytest.raises(IOFormatError, match="voxels"):
            save_samples(
                tmp_path / "x.npz", samples[:, :2], mask, layout, 0.05, affine
            )
        with pytest.raises(IOFormatError, match="parameters"):
            save_samples(
                tmp_path / "x.npz", samples[..., :5], mask, layout, 0.05, affine
            )
        with pytest.raises(IOFormatError):
            save_samples(
                tmp_path / "x.npz", samples[0], mask, layout, 0.05, affine
            )

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(IOFormatError, match="exist"):
            load_samples(tmp_path / "nope.npz")

    def test_load_missing_keys(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, samples=np.zeros((1, 1, 9)))
        with pytest.raises(IOFormatError, match="missing"):
            load_samples(path)
