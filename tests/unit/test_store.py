"""Tests for the content-addressed artifact store (repro.store).

Covers the crash/corruption/race contract the storage docs promise:
atomic write-then-rename (a simulated crash mid-write never yields a
servable entry), corrupt-artifact detection degrades to recompute,
concurrent same-key writers converge on one valid entry, and the
``repro-store`` gc/verify/ls maintenance surface.
"""

import json
import threading

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.store import (
    ENTRY_SCHEMA,
    ArtifactStore,
    StoreEntry,
    StoreStats,
    fingerprint_arrays,
)
from repro.store.cli import main as store_main
from repro.telemetry import MetricsRegistry, use_registry

KEY = "sha256:" + "ab" * 32
KEY2 = "sha256:" + "cd" * 32


def _write_payload(tmp_dir, text="payload", name="blob.txt"):
    (tmp_dir / name).write_text(text)


class TestFingerprint:
    def test_equal_arrays_equal_fingerprint(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert fingerprint_arrays(x=a) == fingerprint_arrays(x=a.copy())

    def test_dtype_sensitive(self):
        a = np.arange(4, dtype=np.float64)
        assert fingerprint_arrays(x=a) != fingerprint_arrays(
            x=a.astype(np.float32)
        )

    def test_shape_sensitive(self):
        a = np.arange(12.0)
        assert fingerprint_arrays(x=a) != fingerprint_arrays(
            x=a.reshape(3, 4)
        )

    def test_name_sensitive(self):
        a = np.arange(4.0)
        assert fingerprint_arrays(x=a) != fingerprint_arrays(y=a)

    def test_none_and_scalars(self):
        a = np.arange(4.0)
        base = fingerprint_arrays(x=a)
        assert fingerprint_arrays(x=a, extra=None) != base
        assert fingerprint_arrays(x=a, k=1) != fingerprint_arrays(x=a, k=2)
        assert fingerprint_arrays(x=a, k=1) != fingerprint_arrays(x=a, k="1")

    def test_order_insensitive(self):
        a, b = np.arange(3.0), np.arange(5.0)
        assert fingerprint_arrays(x=a, y=b) == fingerprint_arrays(y=b, x=a)

    def test_noncontiguous_matches_contiguous(self):
        a = np.arange(24.0).reshape(4, 6)
        view = a[:, ::2]
        assert fingerprint_arrays(x=view) == fingerprint_arrays(
            x=np.ascontiguousarray(view)
        )


class TestPublishLookup:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.publish(
            "sampling", KEY, _write_payload, meta={"n": 3}
        )
        assert entry.stage == "sampling"
        assert entry.meta == {"n": 3}
        assert entry.has("blob.txt") and not entry.has("other")
        assert entry.file("blob.txt").read_text() == "payload"
        assert entry.total_bytes == len("payload")
        with pytest.raises(IOFormatError, match="no file"):
            entry.file("other")

        served = store.lookup("sampling", KEY)
        assert served is not None
        assert served.files == entry.files
        assert served.file("blob.txt").read_text() == "payload"
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_miss_on_empty_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.lookup("tracking", KEY) is None
        assert store.stats.misses == 1

    def test_entry_json_is_not_a_payload_file(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.publish("sampling", KEY, _write_payload)
        assert "entry.json" not in entry.files

    def test_publish_rejects_empty_and_nested(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(IOFormatError, match="no files"):
            store.publish("sampling", KEY, lambda d: None)
        with pytest.raises(IOFormatError, match="flat files"):
            store.publish(
                "sampling", KEY, lambda d: (d / "sub").mkdir()
            )
        # Neither failed publish left anything servable or in-flight.
        assert store.lookup("sampling", KEY) is None
        assert list((store.root / "tmp").iterdir()) == []

    def test_bad_stage_and_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(IOFormatError, match="unknown store stage"):
            store.entry_dir("nonsense", KEY)
        with pytest.raises(IOFormatError, match="sha256"):
            store.entry_dir("sampling", "md5:abcd")
        with pytest.raises(IOFormatError, match="non-hex"):
            store.entry_dir("sampling", "sha256:../../etc")

    def test_ops_counters_not_deterministic(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        reg = MetricsRegistry()
        with use_registry(reg):
            store.publish("sampling", KEY, _write_payload)
            store.lookup("sampling", KEY)
            store.lookup("sampling", KEY2)
        snap = reg.snapshot()
        assert snap["ops"]["store.hits"] == 1
        assert snap["ops"]["store.misses"] == 1
        assert snap["ops"]["store.writes"] == 1
        # Deterministic counters stay clean: cache traffic must never
        # perturb the bit-identity sections of a manifest.
        assert not any(k.startswith("store.") for k in snap["counters"])


class TestCrashAtomicity:
    def test_callback_crash_leaves_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")

        def boom(tmp_dir):
            _write_payload(tmp_dir)
            raise RuntimeError("simulated crash mid-write")

        with pytest.raises(RuntimeError):
            store.publish("sampling", KEY, boom)
        assert store.lookup("sampling", KEY) is None
        assert list((store.root / "tmp").iterdir()) == []

    def test_hard_kill_orphan_never_served(self, tmp_path):
        # A process killed before the final rename leaves only a tmp
        # orphan: simulate the on-disk state directly.
        store = ArtifactStore(tmp_path / "store")
        orphan = store.root / "tmp" / "sampling-abababababab-dead"
        orphan.mkdir(parents=True)
        _write_payload(orphan)
        assert store.lookup("sampling", KEY) is None
        report = store.gc()
        assert report["tmp_removed"] == 1
        assert not orphan.exists()

    def test_partial_entry_dir_never_served(self, tmp_path):
        # A directory at the final path without entry.json (e.g. from a
        # partial rsync) is not an entry; it is quarantined as corrupt.
        store = ArtifactStore(tmp_path / "store")
        partial = store.entry_dir("sampling", KEY)
        partial.mkdir(parents=True)
        _write_payload(partial)
        assert store.lookup("sampling", KEY) is None
        assert store.stats.corrupt == 1
        assert not partial.exists()

    def test_missing_payload_file_never_served(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.publish("sampling", KEY, _write_payload)
        entry.file("blob.txt").unlink()
        assert store.lookup("sampling", KEY) is None
        assert store.stats.corrupt == 1


class TestCorruption:
    def _flip_byte(self, path):
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_corrupt_payload_detected_and_recomputed(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.publish("sampling", KEY, _write_payload)
        # Same size, different content: only the hash can catch this.
        self._flip_byte(entry.file("blob.txt"))
        assert store.lookup("sampling", KEY) is None
        assert store.stats.corrupt == 1
        # The quarantined dir is gone, so a re-publish starts clean...
        fresh = store.publish("sampling", KEY, _write_payload)
        # ...and the healthy copy serves again.
        assert store.lookup("sampling", KEY).files == fresh.files

    def test_corrupt_entry_json_detected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.publish("sampling", KEY, _write_payload)
        (entry.path / "entry.json").write_text("{not json")
        assert store.lookup("sampling", KEY) is None

    def test_wrong_schema_or_key_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.publish("sampling", KEY, _write_payload)
        doc = json.loads((entry.path / "entry.json").read_text())
        doc["key"] = KEY2
        (entry.path / "entry.json").write_text(json.dumps(doc))
        assert store.lookup("sampling", KEY) is None

    def test_verify_on_read_false_skips_hashing(self, tmp_path):
        # Documented trade-off: with verification off, a flipped bit is
        # served (fast lookups for trusted local stores).
        store = ArtifactStore(tmp_path / "store", verify_on_read=False)
        entry = store.publish("sampling", KEY, _write_payload)
        self._flip_byte(entry.file("blob.txt"))
        assert store.lookup("sampling", KEY) is not None
        # Structural damage (a missing file) is still caught.
        entry.file("blob.txt").unlink()
        assert store.lookup("sampling", KEY) is None


class TestRaces:
    def test_rename_loser_serves_winner(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        winner = store.publish("sampling", KEY, _write_payload)
        # A second publish of the same key hits the existing directory,
        # validates it, and returns the winner's entry unchanged.
        loser = store.publish(
            "sampling", KEY, lambda d: _write_payload(d, text="other")
        )
        assert loser.files == winner.files
        assert loser.file("blob.txt").read_text() == "payload"

    def test_publish_replaces_invalid_existing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        partial = store.entry_dir("sampling", KEY)
        partial.mkdir(parents=True)
        _write_payload(partial, text="garbage")
        entry = store.publish("sampling", KEY, _write_payload)
        assert entry.file("blob.txt").read_text() == "payload"
        assert store.lookup("sampling", KEY) is not None

    def test_concurrent_writers_converge(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        barrier = threading.Barrier(4)
        results, errors = [], []

        def worker(i):
            try:
                own = ArtifactStore(store.root)
                barrier.wait()
                results.append(
                    own.publish("tracking", KEY, _write_payload)
                )
            except Exception as exc:  # pragma: no cover - debug aid
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 4
        # Everyone converged on one valid on-disk entry.
        digests = {e.files["blob.txt"]["sha256"] for e in results}
        assert len(digests) == 1
        final = store.lookup("tracking", KEY)
        assert final is not None
        assert final.files["blob.txt"]["sha256"] == digests.pop()
        # No tmp debris survives the race.
        assert list((store.root / "tmp").iterdir()) == []


class TestMaintenance:
    def test_ls(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.ls() == []
        store.publish("sampling", KEY, _write_payload, meta={"n": 1})
        store.publish("tracking", KEY2, _write_payload)
        listing = store.ls()
        assert [e["stage"] for e in listing] == ["sampling", "tracking"]
        assert listing[0]["key"] == KEY
        assert listing[0]["files"] == ["blob.txt"]
        assert listing[0]["meta"] == {"n": 1}
        assert listing[0]["bytes"] == len("payload")

    def test_verify_reports_and_deletes(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        good = store.publish("sampling", KEY, _write_payload)
        bad = store.publish("tracking", KEY2, _write_payload)
        data = bytearray(bad.file("blob.txt").read_bytes())
        data[0] ^= 0xFF
        bad.file("blob.txt").write_bytes(bytes(data))

        report = store.verify()
        assert report["checked"] == 2 and report["ok"] == 1
        assert report["corrupt"] == [str(bad.path)]
        assert bad.path.exists()  # report-only keeps it

        report = store.verify(delete=True)
        assert not bad.path.exists()
        assert good.path.exists()
        assert store.verify() == {"checked": 1, "ok": 1, "corrupt": []}

    def test_gc_checkpoints(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        # Published stage: its checkpoint is superseded.
        store.publish("sampling", KEY, _write_payload)
        store.checkpoint_path("sampling", KEY, "block_0.npz").write_text("x")
        # Unpublished stage: its checkpoint is still needed for resume.
        store.checkpoint_path("sampling", KEY2, "block_0.npz").write_text("y")

        report = store.gc()
        assert report["checkpoints_removed"] == 1
        assert store.checkpoint_path("sampling", KEY2, "block_0.npz").exists()

        store.checkpoint_path("sampling", KEY2, "block_0.npz").write_text("y")
        report = store.gc(all_checkpoints=True)
        assert report["checkpoints_removed"] == 1

    def test_clear_checkpoints(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        p = store.checkpoint_path("sampling", KEY, "block_0.npz")
        p.write_text("x")
        store.clear_checkpoints("sampling", KEY)
        assert not p.exists()
        # Idempotent when nothing is there.
        store.clear_checkpoints("sampling", KEY)


class TestStoreStats:
    def test_record_and_to_dict(self):
        stats = StoreStats()
        stats.record("sampling", "miss")
        stats.record("sampling", "write", 10)
        stats.record("sampling", "hit", 10)
        stats.record("tracking", "corrupt")
        doc = stats.to_dict()
        assert doc["hits"] == 1 and doc["misses"] == 1
        assert doc["bytes_written"] == 10 and doc["bytes_read"] == 10
        assert doc["corrupt"] == 1
        assert doc["by_stage"]["sampling"]["writes"] == 1
        assert doc["by_stage"]["tracking"]["corrupt"] == 1
        assert json.loads(json.dumps(doc)) == doc


class TestEntrySchema:
    def test_entry_json_shape(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        entry = store.publish("sampling", KEY, _write_payload, meta={"a": 1})
        doc = json.loads((entry.path / "entry.json").read_text())
        assert doc["schema"] == ENTRY_SCHEMA
        assert doc["stage"] == "sampling"
        assert doc["key"] == KEY
        assert doc["meta"] == {"a": 1}
        rec = doc["files"]["blob.txt"]
        assert set(rec) == {"sha256", "bytes"}
        assert isinstance(StoreEntry(**{
            "stage": doc["stage"], "key": doc["key"], "path": entry.path,
            "files": doc["files"], "meta": doc["meta"],
        }), StoreEntry)


class TestStoreCli:
    def test_ls_empty(self, tmp_path, capsys):
        assert store_main(["ls", str(tmp_path / "store")]) == 0
        assert "(store is empty)" in capsys.readouterr().out

    def test_ls_entries(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "store")
        store.publish("sampling", KEY, _write_payload)
        assert store_main(["ls", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "sampling" in out and KEY[:19] in out
        assert "1 entries" in out

    def test_verify_exit_codes(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "store")
        entry = store.publish("sampling", KEY, _write_payload)
        assert store_main(["verify", str(store.root)]) == 0

        data = bytearray(entry.file("blob.txt").read_bytes())
        data[0] ^= 0xFF
        entry.file("blob.txt").write_bytes(bytes(data))
        assert store_main(["verify", str(store.root)]) == 1
        assert "corrupt" in capsys.readouterr().out
        assert store_main(["verify", str(store.root), "--delete"]) == 0
        assert not entry.path.exists()

    def test_gc(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "store")
        orphan = store.root / "tmp" / "sampling-x"
        orphan.mkdir(parents=True)
        assert store_main(["gc", str(store.root)]) == 0
        assert "removed 1 tmp dirs" in capsys.readouterr().out
        assert not orphan.exists()
