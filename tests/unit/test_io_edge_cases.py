"""Edge-case I/O tests: big-endian NIfTI, trk with scalars."""

import struct

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.io import read_nifti, read_trk


class TestBigEndianNifti:
    def write_big_endian(self, path, data):
        """Hand-assemble a big-endian NIfTI-1 for the reader's '>' path."""
        data = np.asarray(data, dtype=">f4")
        hdr = bytearray(348)
        struct.pack_into(">i", hdr, 0, 348)
        dim = [data.ndim] + list(data.shape) + [1] * (7 - data.ndim)
        struct.pack_into(">8h", hdr, 40, *dim)
        struct.pack_into(">h", hdr, 70, 16)  # float32
        struct.pack_into(">h", hdr, 72, 32)
        struct.pack_into(">8f", hdr, 76, 0, 2.0, 2.0, 2.0, 1, 1, 1, 1)
        struct.pack_into(">f", hdr, 108, 352.0)
        struct.pack_into(">f", hdr, 112, 1.0)
        struct.pack_into(">h", hdr, 254, 0)  # no sform: pixdim affine
        hdr[344:348] = b"n+1\x00"
        payload = np.transpose(data, range(data.ndim)[::-1]).tobytes()
        path.write_bytes(bytes(hdr) + b"\x00" * 4 + payload)

    def test_reads_big_endian(self, tmp_path):
        data = np.arange(2 * 3 * 4, dtype=np.float32).reshape(2, 3, 4)
        path = tmp_path / "be.nii"
        self.write_big_endian(path, data)
        vol = read_nifti(path)
        np.testing.assert_array_equal(vol.data, data)
        np.testing.assert_allclose(vol.voxel_sizes, 2.0)

    def test_rejects_two_file_magic(self, tmp_path):
        data = np.zeros((2, 2, 2), dtype=np.float32)
        path = tmp_path / "pair.nii"
        self.write_big_endian(path, data)
        raw = bytearray(path.read_bytes())
        raw[344:348] = b"ni1\x00"
        path.write_bytes(bytes(raw))
        with pytest.raises(IOFormatError, match="two-file"):
            read_nifti(path)


class TestTrkWithScalarsProperties:
    def write_trk_with_extras(self, path, n_scalars=2, n_properties=1):
        """Hand-assemble a trk with per-point scalars and track properties."""
        hdr = bytearray(1000)
        hdr[0:6] = b"TRACK\x00"
        struct.pack_into("<3h", hdr, 6, 4, 4, 4)
        struct.pack_into("<3f", hdr, 12, 1.0, 1.0, 1.0)
        struct.pack_into("<h", hdr, 36, n_scalars)
        struct.pack_into("<h", hdr, 238, n_properties)
        struct.pack_into("<i", hdr, 988, 1)
        struct.pack_into("<i", hdr, 992, 2)
        struct.pack_into("<i", hdr, 996, 1000)
        pts = np.array([[0, 0, 0], [1, 1, 1], [2, 2, 2]], dtype="<f4")
        rows = np.concatenate(
            [pts, np.full((3, n_scalars), 7.0, dtype="<f4")], axis=1
        )
        body = struct.pack("<i", 3) + rows.tobytes()
        body += np.full(n_properties, 9.0, dtype="<f4").tobytes()
        path.write_bytes(bytes(hdr) + body)

    def test_reader_skips_scalars_and_properties(self, tmp_path):
        path = tmp_path / "rich.trk"
        self.write_trk_with_extras(path)
        lines, meta = read_trk(path)
        assert meta["n_scalars"] == 2
        assert meta["n_properties"] == 1
        assert len(lines) == 1
        np.testing.assert_allclose(
            lines[0], [[0, 0, 0], [1, 1, 1], [2, 2, 2]]
        )

    def test_count_mismatch_detected(self, tmp_path):
        path = tmp_path / "bad.trk"
        self.write_trk_with_extras(path)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<i", raw, 988, 5)  # header lies about count
        path.write_bytes(bytes(raw))
        with pytest.raises(IOFormatError, match="n_count"):
            read_trk(path)

    def test_negative_point_count_rejected(self, tmp_path):
        path = tmp_path / "neg.trk"
        self.write_trk_with_extras(path)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<i", raw, 1000, -3)
        path.write_bytes(bytes(raw))
        with pytest.raises(IOFormatError, match="negative"):
            read_trk(path)

    def test_zero_voxel_size_tolerated_on_read(self, tmp_path):
        path = tmp_path / "z.trk"
        self.write_trk_with_extras(path, n_scalars=0, n_properties=0)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<3f", raw, 12, 0.0, 0.0, 0.0)
        path.write_bytes(bytes(raw))
        lines, meta = read_trk(path)  # falls back to unit scaling
        assert len(lines) == 1
