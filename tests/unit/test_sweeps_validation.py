"""Tests for sweep harnesses and ground-truth validation."""

import numpy as np
import pytest

from repro.analysis import SweepPoint, criteria_sweep, strategy_sweep
from repro.data import arc_bundle, rasterize_bundles, straight_bundle
from repro.errors import ConfigurationError, TrackingError
from repro.models.fields import FiberField
from repro.tracking import (
    SingleSegmentStrategy,
    TerminationCriteria,
    UniformStrategy,
    paper_strategy_b,
    seeds_from_mask,
    track_streamline,
    validate_against_bundle,
)


def uniform_x_field(shape=(20, 8, 8)):
    f = np.zeros(shape + (2,))
    f[..., 0] = 0.6
    d = np.zeros(shape + (2, 3))
    d[..., 0, 0] = 1.0
    return FiberField(f=f, directions=d, mask=np.ones(shape, bool))


class TestCriteriaSweep:
    def test_grid_shapes_and_monotonicity(self):
        field = uniform_x_field()
        seeds = seeds_from_mask(field.mask)[::15]
        grid = [(0.2, 0.8), (0.4, 0.8), (0.8, 0.8)]
        points = criteria_sweep(
            [field], seeds, grid, paper_strategy_b(), max_steps=200,
            label="uniform-x",
        )
        assert len(points) == 3
        assert [p.step_length for p in points] == [0.2, 0.4, 0.8]
        # Smaller steps mean more iterations for the same geometry.
        totals = [p.result.total_steps for p in points]
        assert totals[0] > totals[1] > totals[2]
        cells = points[0].summary_cells()
        assert len(cells) == len(SweepPoint.HEADERS)

    def test_empty_grid_rejected(self):
        field = uniform_x_field()
        with pytest.raises(ConfigurationError):
            criteria_sweep([field], np.zeros((1, 3)), [], paper_strategy_b())


class TestStrategySweep:
    def test_equivalence_enforced(self):
        field = uniform_x_field()
        seeds = seeds_from_mask(field.mask)[::15]
        crit = TerminationCriteria(max_steps=100, step_length=0.5)
        points = strategy_sweep(
            [field], seeds,
            [UniformStrategy(1), UniformStrategy(20), SingleSegmentStrategy(),
             paper_strategy_b()],
            crit,
        )
        assert len(points) == 4
        names = [p.strategy for p in points]
        assert names == ["A_1", "A_20", "A_MaxStep", "B"]
        # Per Table IV: times differ, work does not.
        totals = {p.result.gpu_total_seconds for p in points}
        assert len(totals) == 4

    def test_empty_strategy_list_rejected(self):
        field = uniform_x_field()
        crit = TerminationCriteria(max_steps=10)
        with pytest.raises(ConfigurationError):
            strategy_sweep([field], np.zeros((1, 3)), [], crit)


class TestBundleValidation:
    def make_tracked_arc(self):
        shape = (8, 36, 36)
        arc = arc_bundle(
            center=[4, 18, 8], radius_of_curvature=11.0, plane="yz",
            tube_radius=2.0,
        )
        field = rasterize_bundles(shape, [arc], mask=np.ones(shape, bool))
        crit = TerminationCriteria(max_steps=2000, min_dot=0.95, step_length=0.2)
        paths = []
        for phi in (-0.6, 0.0, 0.6):
            seed = np.array(
                [4.0, 18 + 11 * np.sin(phi + np.pi / 2) * 0 + 11 * np.cos(np.pi / 2 + phi) * 0, 0.0]
            )
            # Seed at the apex of the arch (top), offset along y.
            seed = np.array([4.0, 18.0 + 6 * phi, 0.0])
            seed[2] = 8 + np.sqrt(max(11**2 - (seed[1] - 18) ** 2, 0.0))
            line = track_streamline(field, seed, [0.0, 1.0, 0.0], crit)
            if line.n_steps > 10:
                paths.append(line.points)
        return paths, arc

    def test_on_bundle_paths_score_well(self):
        paths, arc = self.make_tracked_arc()
        assert paths, "tracking produced no usable paths"
        v = validate_against_bundle(paths, arc, tolerance=1.5)
        assert v.n_paths == len(paths)
        assert v.mean_deviation < 2.0
        assert v.on_bundle_fraction > 0.5
        assert 0.2 < v.coverage <= 1.0
        assert "paths" in v.summary()

    def test_off_bundle_paths_flagged(self):
        _, arc = self.make_tracked_arc()
        stray = [np.tile([4.0, 2.0, 2.0], (10, 1))]  # far from the arch
        v = validate_against_bundle(stray, arc)
        assert v.on_bundle_fraction == 0.0
        assert v.mean_deviation > 5.0
        assert v.coverage < 0.2

    def test_full_coverage_when_tracing_whole_centerline(self):
        b = straight_bundle([0, 5, 5], [19, 5, 5], radius=2.0)
        path = [np.stack([np.linspace(0, 19, 60),
                          np.full(60, 5.0), np.full(60, 5.0)], axis=1)]
        v = validate_against_bundle(path, b)
        assert v.coverage == 1.0
        # Bounded by half the centerline resampling spacing.
        assert v.max_deviation <= 0.25 + 1e-9
        v_fine = validate_against_bundle(path, b, resample_spacing=0.05)
        assert v_fine.max_deviation <= 0.025 + 1e-9

    def test_validation_errors(self):
        b = straight_bundle([0, 0, 0], [5, 0, 0])
        with pytest.raises(TrackingError):
            validate_against_bundle([], b)
        with pytest.raises(TrackingError):
            validate_against_bundle([np.zeros((3, 2))], b)
        with pytest.raises(TrackingError):
            validate_against_bundle([np.zeros((3, 3))], b, tolerance=-1.0)
