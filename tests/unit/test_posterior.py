"""Unit tests for priors, likelihood, layout, and posterior."""

import numpy as np
import pytest

from repro.errors import DataError, ModelError
from repro.io import GradientTable
from repro.models import (
    LogPosterior,
    MultiFiberModel,
    MultiFiberPriors,
    ParameterLayout,
    gaussian_loglike,
)
from repro.utils.geometry import fibonacci_sphere


@pytest.fixture
def gtab():
    bvals = np.concatenate([np.zeros(3), np.full(30, 1000.0)])
    bvecs = np.concatenate([np.zeros((3, 3)), fibonacci_sphere(30)])
    return GradientTable(bvals, bvecs)


def synth_signal(gtab, n=8, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    model = MultiFiberModel(2)
    true = dict(
        s0=rng.uniform(90, 110, n),
        d=rng.uniform(8e-4, 1.5e-3, n),
        f=np.stack([rng.uniform(0.3, 0.5, n), rng.uniform(0.05, 0.2, n)], axis=1),
        theta=rng.uniform(0.3, np.pi - 0.3, (n, 2)),
        phi=rng.uniform(0, 2 * np.pi, (n, 2)),
    )
    mu = model.predict(gtab, **true)
    if noise:
        mu = mu + rng.normal(scale=noise, size=mu.shape)
    return mu, true


class TestLayout:
    def test_paper_has_nine_parameters(self):
        assert ParameterLayout(2).n_params == 9

    def test_names_order(self):
        names = ParameterLayout(2).names
        assert names == (
            "s0", "d", "sigma", "f1", "f2", "theta1", "theta2", "phi1", "phi2",
        )

    def test_slices_partition(self):
        lay = ParameterLayout(3)
        idx = [lay.s0, lay.d, lay.sigma]
        idx += list(range(*lay.f.indices(lay.n_params)))
        idx += list(range(*lay.theta.indices(lay.n_params)))
        idx += list(range(*lay.phi.indices(lay.n_params)))
        assert sorted(idx) == list(range(lay.n_params))

    def test_is_angular(self):
        lay = ParameterLayout(2)
        assert not lay.is_angular(lay.s0)
        assert not lay.is_angular(4)  # f2
        assert lay.is_angular(5) and lay.is_angular(8)

    def test_unpack_views(self):
        lay = ParameterLayout(2)
        p = np.arange(18, dtype=float).reshape(2, 9)
        u = lay.unpack(p)
        assert u["s0"][0] == 0.0 and u["sigma"][1] == 11.0
        u["f"][0, 0] = -99.0
        assert p[0, 3] == -99.0  # views, not copies

    def test_unpack_rejects_bad_shape(self):
        with pytest.raises(DataError):
            ParameterLayout(2).unpack(np.zeros((2, 8)))

    def test_rejects_zero_fibers(self):
        with pytest.raises(ModelError):
            ParameterLayout(0)


class TestGaussianLoglike:
    def test_matches_scipy(self):
        from scipy.stats import norm

        rng = np.random.default_rng(0)
        data = rng.normal(size=(3, 10))
        mu = rng.normal(size=(3, 10))
        sigma = np.array([0.5, 1.0, 2.0])
        ll = gaussian_loglike(data, mu, sigma)
        expect = np.array(
            [norm.logpdf(data[i], mu[i], sigma[i]).sum() for i in range(3)]
        )
        np.testing.assert_allclose(ll, expect, rtol=1e-12)

    def test_nonpositive_sigma_is_minus_inf(self):
        ll = gaussian_loglike(np.zeros((2, 4)), np.zeros((2, 4)), np.array([0.0, -1.0]))
        assert np.all(np.isneginf(ll))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            gaussian_loglike(np.zeros((2, 4)), np.zeros((2, 5)), np.ones(2))
        with pytest.raises(ModelError):
            gaussian_loglike(np.zeros((2, 4)), np.zeros((2, 4)), np.ones(3))


class TestPriors:
    def make_args(self, n=4):
        return dict(
            s0=np.full(n, 100.0),
            d=np.full(n, 1e-3),
            sigma=np.full(n, 5.0),
            f=np.tile([0.4, 0.2], (n, 1)),
            theta=np.full((n, 2), np.pi / 2),
            phi=np.zeros((n, 2)),
        )

    def test_valid_state_is_finite(self):
        lp = MultiFiberPriors().log_prior(**self.make_args())
        assert np.all(np.isfinite(lp))

    @pytest.mark.parametrize(
        "key,value",
        [
            ("s0", -1.0),
            ("d", -1e-3),
            ("d", 0.5),
            ("sigma", 0.0),
        ],
    )
    def test_out_of_support_scalar(self, key, value):
        args = self.make_args()
        args[key] = args[key].copy()
        args[key][0] = value
        lp = MultiFiberPriors().log_prior(**args)
        assert np.isneginf(lp[0]) and np.isfinite(lp[1])

    def test_fraction_simplex(self):
        args = self.make_args()
        args["f"] = args["f"].copy()
        args["f"][0] = [0.7, 0.5]  # sums over 1
        args["f"][1] = [-0.1, 0.2]
        lp = MultiFiberPriors().log_prior(**args)
        assert np.isneginf(lp[0]) and np.isneginf(lp[1]) and np.isfinite(lp[2])

    def test_sin_theta_prior(self):
        args = self.make_args()
        lp_equator = MultiFiberPriors().log_prior(**args)
        args2 = dict(args)
        args2["theta"] = np.full((4, 2), 0.1)
        lp_pole = MultiFiberPriors().log_prior(**args2)
        assert np.all(lp_pole < lp_equator)

    def test_exact_pole_is_zero_density(self):
        args = self.make_args()
        args["theta"] = args["theta"].copy()
        args["theta"][0, 0] = 0.0
        lp = MultiFiberPriors().log_prior(**args)
        assert np.isneginf(lp[0])

    def test_jeffreys_sigma(self):
        args = self.make_args()
        lp1 = MultiFiberPriors().log_prior(**args)
        args2 = dict(args)
        args2["sigma"] = args["sigma"] * 2
        lp2 = MultiFiberPriors().log_prior(**args2)
        np.testing.assert_allclose(lp1 - lp2, np.log(2.0), rtol=1e-12)

    def test_ard_penalizes_secondary_fraction(self):
        args = self.make_args()
        base = MultiFiberPriors(ard=True).log_prior(**args)
        args2 = dict(args)
        args2["f"] = np.tile([0.4, 0.4], (4, 1))
        bigger = MultiFiberPriors(ard=True).log_prior(**args2)
        assert np.all(bigger < base)

    def test_ard_floor_keeps_finite(self):
        args = self.make_args()
        args["f"] = np.tile([0.4, 0.0], (4, 1))
        lp = MultiFiberPriors(ard=True).log_prior(**args)
        assert np.all(np.isfinite(lp))

    def test_bad_config_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MultiFiberPriors(s0_max=0.0)
        with pytest.raises(ConfigurationError):
            MultiFiberPriors(sigma_bounds=(1.0, 0.5))


class TestLogPosterior:
    def test_shapes_and_finiteness(self, gtab):
        data, _ = synth_signal(gtab, n=6, noise=1.0)
        post = LogPosterior(gtab, data)
        params = post.initial_params()
        assert params.shape == (6, 9)
        lp = post(params)
        assert lp.shape == (6,)
        assert np.all(np.isfinite(lp))

    def test_truth_beats_perturbation(self, gtab):
        data, true = synth_signal(gtab, n=5, noise=0.5)
        post = LogPosterior(gtab, data)
        lay = post.layout
        params = np.zeros((5, 9))
        params[:, lay.s0] = true["s0"]
        params[:, lay.d] = true["d"]
        params[:, lay.sigma] = 0.5
        params[:, lay.f] = true["f"]
        params[:, lay.theta] = true["theta"]
        params[:, lay.phi] = true["phi"]
        lp_true = post(params)
        worse = params.copy()
        worse[:, lay.d] *= 3.0
        assert np.all(post(worse) < lp_true)

    def test_prior_veto_propagates(self, gtab):
        data, _ = synth_signal(gtab, n=3)
        post = LogPosterior(gtab, data)
        params = post.initial_params()
        params[1, post.layout.d] = -1.0
        lp = post(params)
        assert np.isneginf(lp[1])
        assert np.isfinite(lp[0]) and np.isfinite(lp[2])

    def test_all_vetoed_short_circuit(self, gtab):
        data, _ = synth_signal(gtab, n=2)
        post = LogPosterior(gtab, data)
        params = post.initial_params()
        params[:, post.layout.sigma] = -1.0
        assert np.all(np.isneginf(post(params)))

    def test_initial_params_within_support(self, gtab):
        data, _ = synth_signal(gtab, n=10, noise=2.0)
        post = LogPosterior(gtab, data)
        lp = post(post.initial_params())
        assert np.all(np.isfinite(lp))

    def test_initial_params_jitter_reproducible(self, gtab):
        data, _ = synth_signal(gtab, n=4, noise=1.0)
        post = LogPosterior(gtab, data)
        a = post.initial_params(jitter=0.05, seed=1)
        b = post.initial_params(jitter=0.05, seed=1)
        c = post.initial_params(jitter=0.05, seed=2)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_initial_direction_matches_tensor(self, gtab):
        # Single dominant fiber along +x: theta1 ~ pi/2, phi1 ~ 0 (mod pi).
        model = MultiFiberModel(2)
        mu = model.predict(
            gtab,
            s0=np.array([100.0]),
            d=np.array([1e-3]),
            f=np.array([[0.6, 0.0]]),
            theta=np.array([[np.pi / 2, 1.0]]),
            phi=np.array([[0.0, 1.0]]),
        )
        post = LogPosterior(gtab, mu)
        p = post.initial_params()
        from repro.utils.geometry import spherical_to_cartesian

        v = spherical_to_cartesian(
            p[0, post.layout.theta][0], p[0, post.layout.phi][0]
        )
        assert abs(v[0]) > 0.99

    def test_rejects_bad_data(self, gtab):
        with pytest.raises(DataError):
            LogPosterior(gtab, np.zeros(5))
        with pytest.raises(DataError):
            LogPosterior(gtab, np.zeros((2, 7)))
