"""Tests for streamline clustering (repro.tracking.clustering)."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.tracking import mdf_distance, quickbundles, resample_polyline


def line(start, end, n=20, jitter=0.0, seed=0):
    t = np.linspace(0.0, 1.0, n)[:, None]
    pts = np.asarray(start, float) + t * (np.asarray(end, float) - start)
    if jitter:
        pts = pts + np.random.default_rng(seed).normal(scale=jitter, size=pts.shape)
    return pts


class TestResample:
    def test_preserves_endpoints(self):
        pts = line([0, 0, 0], [10, 0, 0], n=7)
        r = resample_polyline(pts, 12)
        assert r.shape == (12, 3)
        np.testing.assert_allclose(r[0], [0, 0, 0])
        np.testing.assert_allclose(r[-1], [10, 0, 0])

    def test_equidistant(self):
        pts = np.array([[0.0, 0, 0], [1.0, 0, 0], [10.0, 0, 0]])
        r = resample_polyline(pts, 11)
        np.testing.assert_allclose(np.diff(r[:, 0]), 1.0, atol=1e-12)

    def test_degenerate_inputs(self):
        single = resample_polyline(np.zeros((1, 3)), 5)
        assert single.shape == (5, 3)
        stationary = resample_polyline(np.zeros((4, 3)), 5)
        np.testing.assert_allclose(stationary, 0.0)

    def test_validation(self):
        with pytest.raises(TrackingError):
            resample_polyline(np.zeros((3, 2)), 5)
        with pytest.raises(TrackingError):
            resample_polyline(np.zeros((3, 3)), 1)


class TestMdf:
    def test_zero_for_identical(self):
        a = resample_polyline(line([0, 0, 0], [10, 0, 0]), 12)
        assert mdf_distance(a, a) == 0.0

    def test_flip_invariance(self):
        a = resample_polyline(line([0, 0, 0], [10, 0, 0]), 12)
        assert mdf_distance(a, a[::-1]) == 0.0

    def test_parallel_offset(self):
        a = resample_polyline(line([0, 0, 0], [10, 0, 0]), 12)
        b = resample_polyline(line([0, 3, 0], [10, 3, 0]), 12)
        assert mdf_distance(a, b) == pytest.approx(3.0)

    def test_symmetry(self):
        a = resample_polyline(line([0, 0, 0], [10, 0, 0]), 12)
        b = resample_polyline(line([0, 0, 0], [0, 10, 0]), 12)
        assert mdf_distance(a, b) == pytest.approx(mdf_distance(b, a))

    def test_validation(self):
        with pytest.raises(TrackingError):
            mdf_distance(np.zeros((5, 3)), np.zeros((6, 3)))


class TestQuickBundles:
    def test_two_well_separated_bundles(self):
        rng_lines = []
        for k in range(10):
            rng_lines.append(line([0, 0, 0], [20, 0, 0], jitter=0.2, seed=k))
        for k in range(6):
            rng_lines.append(line([0, 15, 0], [20, 15, 0], jitter=0.2, seed=50 + k))
        clusters = quickbundles(rng_lines, threshold=4.0)
        assert len(clusters) == 2
        assert clusters[0].size == 10 and clusters[1].size == 6
        assert sorted(clusters[0].indices) == list(range(10))

    def test_flipped_members_join_same_bundle(self):
        lines = [line([0, 0, 0], [20, 0, 0], jitter=0.1, seed=k) for k in range(4)]
        lines += [l[::-1] for l in lines]
        clusters = quickbundles(lines, threshold=4.0)
        assert len(clusters) == 1
        assert clusters[0].size == 8

    def test_threshold_controls_granularity(self):
        lines = [
            line([0, y, 0], [20, y, 0], jitter=0.05, seed=y) for y in range(6)
        ]
        coarse = quickbundles(lines, threshold=10.0)
        fine = quickbundles(lines, threshold=0.4)
        assert len(coarse) < len(fine)

    def test_centroid_near_members(self):
        lines = [line([0, 0, 0], [20, 0, 0], jitter=0.3, seed=k) for k in range(20)]
        (cluster,) = quickbundles(lines, threshold=5.0)
        np.testing.assert_allclose(cluster.centroid[:, 1:], 0.0, atol=0.5)
        assert cluster.centroid[0, 0] < 1.0 and cluster.centroid[-1, 0] > 19.0

    def test_empty_and_validation(self):
        assert quickbundles([]) == []
        with pytest.raises(TrackingError):
            quickbundles([np.zeros((5, 3))], threshold=0.0)

    def test_on_tracked_phantom_bundles(self):
        # End-to-end: cluster the paths tracked through two crossing
        # bundles; the two tracts separate cleanly.
        from repro.data import crossing_pair, rasterize_bundles
        from repro.tracking import TerminationCriteria, track_streamline

        shape = (30, 30, 6)
        b1, b2 = crossing_pair(
            [15, 15, 3], 12.0, angle=np.pi / 2, radius=2.0
        )
        field = rasterize_bundles(shape, [b1, b2], mask=np.ones(shape, bool))
        crit = TerminationCriteria(max_steps=200, min_dot=0.7, step_length=0.5)
        paths = []
        for y in (13.0, 15.0, 17.0):
            paths.append(
                track_streamline(field, [4.0, y, 3.0], [1.0, 0.0, 0.0], crit).points
            )
        for x in (13.0, 15.0, 17.0):
            paths.append(
                track_streamline(field, [x, 4.0, 3.0], [0.0, 1.0, 0.0], crit).points
            )
        clusters = quickbundles(paths, threshold=6.0)
        assert len(clusters) == 2
        assert {tuple(sorted(c.indices)) for c in clusters} == {
            (0, 1, 2),
            (3, 4, 5),
        }
