"""Unit tests for seeds, segmentation, executor, connectivity, lengths."""

import numpy as np
import pytest

from repro.data import arc_bundle, rasterize_bundles, straight_bundle
from repro.errors import ConfigurationError, DataError, TrackingError
from repro.gpu import PHENOM_X4
from repro.models.fields import FiberField
from repro.tracking import (
    ConnectivityAccumulator,
    IncreasingStrategy,
    ProbtrackConfig,
    SegmentedTracker,
    SingleSegmentStrategy,
    StopReason,
    TerminationCriteria,
    UniformStrategy,
    cumulative_lengths,
    fit_exponential,
    increasing_intervals,
    length_histogram,
    paper_strategy_b,
    paper_strategy_c,
    probabilistic_streamlining,
    seeds_from_mask,
    table2_strategy,
)
from repro.tracking.lengths import semilog_series


def uniform_x_field(shape=(16, 8, 8), f=0.6):
    fr = np.zeros(shape + (2,))
    fr[..., 0] = f
    dirs = np.zeros(shape + (2, 3))
    dirs[..., 0, 0] = 1.0
    return FiberField(f=fr, directions=dirs, mask=np.ones(shape, bool))


def phantom_field(shape=(8, 30, 30)):
    arc = arc_bundle(
        center=[4, 15, 6], radius_of_curvature=9.0, plane="yz", tube_radius=2.0
    )
    line = straight_bundle([4, 2, 12], [4, 28, 12], radius=1.5, weight=0.45)
    return rasterize_bundles(shape, [arc, line], mask=np.ones(shape, bool))


class TestSeeds:
    def test_centers_in_order(self):
        mask = np.zeros((3, 3, 3), bool)
        mask[0, 0, 1] = mask[1, 2, 0] = True
        seeds = seeds_from_mask(mask)
        np.testing.assert_allclose(seeds, [[0, 0, 1], [1, 2, 0]])

    def test_per_voxel_and_jitter(self):
        mask = np.zeros((2, 2, 2), bool)
        mask[0, 0, 0] = True
        seeds = seeds_from_mask(mask, per_voxel=4, jitter=0.3, seed=0)
        assert seeds.shape == (4, 3)
        assert np.all(np.abs(seeds) <= 0.3 + 1e-12)
        assert len(np.unique(seeds, axis=0)) == 4

    def test_validation(self):
        with pytest.raises(DataError):
            seeds_from_mask(np.zeros((2, 2), bool))
        with pytest.raises(DataError):
            seeds_from_mask(np.zeros((2, 2, 2), dtype=int))
        with pytest.raises(DataError):
            seeds_from_mask(np.ones((2, 2, 2), bool), per_voxel=0)
        with pytest.raises(DataError):
            seeds_from_mask(np.ones((2, 2, 2), bool), jitter=-0.1)


class TestSegmentation:
    def test_uniform_exact_division(self):
        assert UniformStrategy(10).segments(50) == [10] * 5

    def test_uniform_remainder(self):
        assert UniformStrategy(20).segments(50) == [20, 20, 10]

    def test_a1_is_per_step(self):
        assert UniformStrategy(1).segments(5) == [1] * 5

    def test_single_segment(self):
        assert SingleSegmentStrategy().segments(888) == [888]

    def test_paper_arrays(self):
        assert paper_strategy_b().array == [1, 2, 5, 10, 20, 50, 100, 200, 500]
        assert sum(paper_strategy_b().array) == 888
        assert len(paper_strategy_c().array) == 16
        assert sum(paper_strategy_c().array) == 776
        assert sum(table2_strategy().array) == 1888

    def test_increasing_covers_budget_exactly(self):
        segs = paper_strategy_b().segments(888)
        assert sum(segs) == 888
        segs = paper_strategy_b().segments(1000)  # extend with last entry
        assert sum(segs) == 1000
        segs = paper_strategy_b().segments(100)  # trim
        assert sum(segs) == 100

    def test_increasing_intervals_generator(self):
        segs = increasing_intervals(1000, first=1, ratio=2.5)
        assert sum(segs) == 1000
        assert all(s >= 1 for s in segs)
        # Non-decreasing except possibly the final capped entry.
        assert all(b >= a for a, b in zip(segs[:-2], segs[1:-1]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformStrategy(0)
        with pytest.raises(ConfigurationError):
            IncreasingStrategy([])
        with pytest.raises(ConfigurationError):
            IncreasingStrategy([1, 0, 5])
        with pytest.raises(ConfigurationError):
            SingleSegmentStrategy().segments(0)
        with pytest.raises(ConfigurationError):
            increasing_intervals(10, ratio=1.0)
        with pytest.raises(ConfigurationError):
            increasing_intervals(10, first=0)


class TestConnectivity:
    def test_counts_and_probability(self):
        acc = ConnectivityAccumulator(n_seeds=2, n_voxels=10)
        acc.begin_sample()
        acc.visit(np.array([0, 0, 1]), np.array([3, 3, 7]))  # dup deduped
        acc.end_sample()
        acc.begin_sample()
        acc.visit(np.array([0]), np.array([3]))
        acc.end_sample()
        p = acc.probability()
        assert p[0, 3] == 1.0
        assert p[1, 7] == 0.5
        assert acc.counts[0, 3] == 2

    def test_connected_voxels_threshold(self):
        acc = ConnectivityAccumulator(2, 10)
        acc.begin_sample()
        acc.visit(np.array([0, 0]), np.array([1, 2]))
        acc.end_sample()
        acc.begin_sample()
        acc.visit(np.array([0]), np.array([1]))
        acc.end_sample()
        np.testing.assert_array_equal(acc.connected_voxels(0), [1, 2])
        np.testing.assert_array_equal(acc.connected_voxels(0, threshold=0.6), [1])

    def test_visit_count_volume(self):
        acc = ConnectivityAccumulator(1, 8)
        acc.begin_sample()
        acc.visit(np.array([0]), np.array([5]))
        acc.end_sample()
        vol = acc.visit_count_volume((2, 2, 2))
        assert vol[1, 0, 1] == 1  # flat 5 in a (2,2,2) grid
        assert vol.sum() == 1

    def test_protocol_errors(self):
        acc = ConnectivityAccumulator(1, 4)
        with pytest.raises(TrackingError):
            acc.visit(np.array([0]), np.array([0]))
        acc.begin_sample()
        with pytest.raises(TrackingError):
            acc.begin_sample()
        acc.end_sample()
        with pytest.raises(TrackingError):
            acc.end_sample()
        with pytest.raises(TrackingError):
            ConnectivityAccumulator(1, 4).probability()  # no samples yet
        with pytest.raises(TrackingError):
            ConnectivityAccumulator(0, 4)

    def test_index_range_checks(self):
        acc = ConnectivityAccumulator(2, 4)
        acc.begin_sample()
        with pytest.raises(TrackingError):
            acc.visit(np.array([2]), np.array([0]))
        with pytest.raises(TrackingError):
            acc.visit(np.array([0]), np.array([4]))
        with pytest.raises(TrackingError):
            acc.visit(np.array([0, 1]), np.array([0]))


class TestLengthStats:
    def test_exponential_fit_recovers_rate(self):
        rng = np.random.default_rng(0)
        x = rng.exponential(scale=30.0, size=20000) + 1.0
        fit = fit_exponential(x)
        assert fit.rate == pytest.approx(1 / 30.0, rel=0.05)
        assert fit.ks_pvalue > 0.01
        assert fit.looks_exponential

    def test_non_exponential_rejected_by_r2(self):
        rng = np.random.default_rng(1)
        x = rng.normal(loc=100.0, scale=5.0, size=5000)
        fit = fit_exponential(x)
        assert not fit.looks_exponential or fit.ks_pvalue < 1e-3

    def test_truncation_filters_budget_spike(self):
        rng = np.random.default_rng(2)
        x = np.minimum(rng.exponential(scale=50.0, size=10000), 200.0)
        fit_trunc = fit_exponential(x, truncate_at=200.0)
        assert fit_trunc.n < 10000
        assert fit_trunc.rate == pytest.approx(1 / 50.0, rel=0.15)

    def test_fit_validation(self):
        with pytest.raises(TrackingError):
            fit_exponential(np.array([]))
        with pytest.raises(TrackingError):
            fit_exponential(np.array([-1.0] * 20))
        with pytest.raises(TrackingError):
            fit_exponential(np.full(20, 1.0))  # degenerate after shift
        with pytest.raises(TrackingError):
            fit_exponential(np.arange(5.0))  # too few after filtering

    def test_histogram_and_semilog(self):
        rng = np.random.default_rng(3)
        x = rng.exponential(scale=20.0, size=5000)
        hist, centers = length_histogram(x, bins=30)
        assert hist.sum() == 5000
        assert len(centers) == 30
        cx, logy = semilog_series(x, bins=30)
        assert len(cx) == len(logy)
        # Semi-log slope should be ~ -1/20.
        slope = np.polyfit(cx, logy, 1)[0]
        assert slope == pytest.approx(-1 / 20.0, rel=0.2)

    def test_cumulative_monotone(self):
        x = np.array([5.0, 1.0, 3.0, 3.0])
        xs, p = cumulative_lengths(x)
        np.testing.assert_array_equal(xs, [1, 3, 3, 5])
        assert p[0] == 0.75 and p[-1] == 0.0
        assert np.all(np.diff(p) <= 0)

    def test_empty_inputs(self):
        with pytest.raises(TrackingError):
            cumulative_lengths(np.array([]))
        with pytest.raises(TrackingError):
            length_histogram(np.array([]))


class TestSegmentedExecutor:
    def run_uniform(self, strategy, **kwargs):
        field = uniform_x_field(shape=(16, 8, 8))
        crit = TerminationCriteria(max_steps=100, min_dot=0.8, step_length=0.5)
        seeds = seeds_from_mask(field.mask & (field.f[..., 0] > 0))[::7]
        tracker = SegmentedTracker()
        return tracker.run([field], seeds, crit, strategy, **kwargs), seeds

    def test_results_independent_of_strategy(self):
        res_a, _ = self.run_uniform(UniformStrategy(1))
        res_b, _ = self.run_uniform(SingleSegmentStrategy())
        res_c, _ = self.run_uniform(paper_strategy_b())
        np.testing.assert_array_equal(res_a.lengths, res_b.lengths)
        np.testing.assert_array_equal(res_a.lengths, res_c.lengths)
        np.testing.assert_array_equal(res_a.reasons, res_b.reasons)

    def test_time_decomposition_positive(self):
        res, _ = self.run_uniform(paper_strategy_b())
        assert res.kernel_seconds > 0
        assert res.transfer_seconds > 0
        assert res.reduction_seconds > 0
        assert res.gpu_total_seconds == pytest.approx(
            res.kernel_seconds + res.transfer_seconds + res.reduction_seconds
        )

    def test_a1_transfer_dominates(self):
        res_a1, _ = self.run_uniform(UniformStrategy(1))
        res_mono, _ = self.run_uniform(SingleSegmentStrategy())
        assert res_a1.transfer_seconds > 10 * res_mono.transfer_seconds
        assert res_a1.transfer_seconds > res_a1.kernel_seconds

    def test_cpu_model_formula(self):
        res, _ = self.run_uniform(paper_strategy_b())
        assert res.cpu_seconds == pytest.approx(
            res.total_steps * PHENOM_X4.seconds_per_iteration
        )

    def test_speedup_at_scale(self):
        # The tiny uniform workloads above are overhead-dominated; at a
        # realistic seed count the modeled GPU wins decisively.
        field = uniform_x_field(shape=(64, 12, 12))
        crit = TerminationCriteria(max_steps=200, min_dot=0.8, step_length=0.5)
        seeds = seeds_from_mask(field.mask & (field.f[..., 0] > 0))[::2]
        assert len(seeds) > 2000
        res = SegmentedTracker().run([field], seeds, crit, paper_strategy_b())
        assert res.speedup > 5.0

    def test_launch_records(self):
        res, _ = self.run_uniform(paper_strategy_b())
        assert len(res.launches) >= 1
        total_exec = sum(l.executed_iterations for l in res.launches)
        assert total_exec >= res.total_steps  # stop iterations add extra

    def test_sorted_order_same_results(self):
        field = uniform_x_field()
        crit = TerminationCriteria(max_steps=60, step_length=0.5)
        seeds = seeds_from_mask(field.mask)[::11]
        tracker = SegmentedTracker()
        fields = [field, field, field]
        nat = tracker.run(fields, seeds, crit, paper_strategy_b(), order="natural")
        srt = tracker.run(fields, seeds, crit, paper_strategy_b(), order="sorted")
        np.testing.assert_array_equal(nat.lengths, srt.lengths)

    def test_overlap_reduces_modeled_time(self):
        field = phantom_field()
        crit = TerminationCriteria(max_steps=120, min_dot=0.85, step_length=0.3)
        seeds = seeds_from_mask(field.mask & (field.f[..., 0] > 0))[::5]
        tracker = SegmentedTracker()
        fields = [field] * 4
        res = tracker.run(fields, seeds, crit, paper_strategy_b(), overlap=True)
        assert res.overlapped_seconds < res.gpu_total_seconds
        # Overlap never changes functional results.
        res_serial = tracker.run(fields, seeds, crit, paper_strategy_b())
        np.testing.assert_array_equal(res.lengths, res_serial.lengths)

    def test_connectivity_wiring(self):
        field = uniform_x_field()
        crit = TerminationCriteria(max_steps=60, step_length=0.5)
        seeds = seeds_from_mask(field.mask)[::13]
        acc = ConnectivityAccumulator(len(seeds), int(np.prod(field.shape3)))
        tracker = SegmentedTracker()
        tracker.run([field, field], seeds, crit, paper_strategy_b(), connectivity=acc)
        assert acc.n_samples == 2
        p = acc.probability()
        assert p.nnz > 0
        assert p.max() <= 1.0

    def test_validation(self):
        tracker = SegmentedTracker()
        crit = TerminationCriteria(max_steps=10)
        with pytest.raises(TrackingError):
            tracker.run([], np.zeros((1, 3)), crit, paper_strategy_b())
        field = uniform_x_field()
        with pytest.raises(TrackingError):
            tracker.run([field], np.zeros((3, 2)), crit, paper_strategy_b())
        with pytest.raises(ConfigurationError):
            tracker.run(
                [field], np.zeros((1, 3)), crit, paper_strategy_b(), order="random"
            )

    def test_all_dead_seeds_complete(self):
        shape = (6, 6, 6)
        field = FiberField(
            f=np.zeros(shape + (1,)),
            directions=np.zeros(shape + (1, 3)),
            mask=np.ones(shape, bool),
        )
        crit = TerminationCriteria(max_steps=10)
        tracker = SegmentedTracker()
        res = tracker.run(
            [field], np.array([[3.0, 3.0, 3.0]]), crit, paper_strategy_b()
        )
        assert res.lengths[0, 0] == 0
        assert res.reasons[0, 0] == StopReason.NO_DIRECTION


class TestProbtrack:
    def test_end_to_end_on_phantom(self):
        field = phantom_field()
        cfg = ProbtrackConfig(
            criteria=TerminationCriteria(max_steps=150, min_dot=0.85, step_length=0.3)
        )
        result = probabilistic_streamlining([field, field], config=cfg)
        assert result.run.n_samples == 2
        assert result.run.n_seeds == result.seeds.shape[0]
        assert result.run.total_steps > 0
        assert result.connectivity is not None
        assert result.connectivity_probability.nnz > 0

    def test_explicit_seeds(self):
        field = uniform_x_field()
        cfg = ProbtrackConfig(
            criteria=TerminationCriteria(max_steps=50, step_length=0.5),
            accumulate_connectivity=False,
        )
        seeds = np.array([[1.0, 4.0, 4.0], [2.0, 3.0, 3.0]])
        result = probabilistic_streamlining([field], config=cfg, seeds=seeds)
        assert result.run.n_seeds == 2
        assert result.connectivity is None
        with pytest.raises(TrackingError):
            _ = result.connectivity_probability

    def test_validation(self):
        with pytest.raises(TrackingError):
            probabilistic_streamlining([])
        field = uniform_x_field()
        with pytest.raises(TrackingError):
            probabilistic_streamlining(
                [field], seed_mask=np.zeros(field.shape3, bool)
            )
