"""The unified run-spec configuration layer.

Covers the :mod:`repro.config` contract: dotted-path validation errors,
value coercion, layering precedence (defaults < spec file < CLI flags <
``--set``), TOML/JSON spec files, the telemetry-invariant content hash,
spec round-trips through the stage configs, and the manifest v1/v2
provenance handshake.
"""

import json

import pytest

from repro.config import (
    HAVE_TOML,
    RUNTIME_DETERMINISTIC_FIELDS,
    STAGES,
    RunSpec,
    apply_override,
    deep_merge,
    dumps_json,
    dumps_toml,
    hash_spec_dict,
    load_spec_file,
    parse_set_argument,
    resolve_run_spec,
    stage_hash,
    stage_subtree,
)
from repro.errors import ConfigurationError, TelemetryError
from repro.gpu.presets import (
    DEVICE_PRESETS,
    HOST_PRESETS,
    device_preset,
    device_preset_name,
    host_preset,
    host_preset_name,
)
from repro.mcmc import MCMCConfig
from repro.pipeline import BedpostConfig
from repro.telemetry import (
    MANIFEST_SCHEMA_V1,
    MetricsRegistry,
    build_manifest,
    manifest_config,
    validate_manifest,
)
from repro.tracking import ProbtrackConfig, TerminationCriteria
from repro.tracking.segmentation import (
    IncreasingStrategy,
    UniformStrategy,
    strategy_from_spec,
    strategy_to_spec,
    table2_strategy,
)


class TestRunSpecValidation:
    def test_defaults_are_valid(self):
        spec = RunSpec()
        assert spec.sampling.n_samples == 50
        assert spec.tracking.max_steps == 1888
        assert spec.runtime.n_workers == 1

    @pytest.mark.parametrize(
        "doc, path",
        [
            ({"sampling": {"n_samples": 0}}, "sampling.n_samples"),
            ({"sampling": {"noise_model": "laplace"}}, "sampling.noise_model"),
            ({"sampling": {"f_threshold": 1.5}}, "sampling.f_threshold"),
            ({"tracking": {"min_dot": -0.1}}, "tracking.min_dot"),
            ({"tracking": {"step_length": 0.0}}, "tracking.step_length"),
            ({"tracking": {"interpolation": "cubic"}}, "tracking.interpolation"),
            ({"tracking": {"order": "reversed"}}, "tracking.order"),
            ({"tracking": {"strategy": "zigzag"}}, "tracking.strategy"),
            ({"runtime": {"n_workers": 0}}, "runtime.n_workers"),
            ({"runtime": {"max_retries": -1}}, "runtime.max_retries"),
            ({"runtime": {"shard_timeout_s": -2.0}}, "runtime.shard_timeout_s"),
            ({"runtime": {"device": "geforce_256"}}, "runtime.device"),
            ({"runtime": {"host": "cray_1"}}, "runtime.host"),
            ({"runtime": {"fault_plan": "explode:0"}}, "runtime.fault_plan"),
        ],
    )
    def test_invalid_field_names_dotted_path(self, doc, path):
        with pytest.raises(ConfigurationError, match=path.replace(".", r"\.")):
            RunSpec.from_dict(doc)

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            RunSpec.from_dict({"samplng": {"n_samples": 5}})

    def test_unknown_key_names_dotted_path(self):
        with pytest.raises(ConfigurationError, match=r"tracking\.max_step"):
            RunSpec.from_dict({"tracking": {"max_step": 10}})

    def test_coercion_int_from_float_and_bool_strict(self):
        spec = RunSpec.from_dict({"sampling": {"n_samples": 8.0}})
        assert spec.sampling.n_samples == 8
        with pytest.raises(ConfigurationError, match=r"sampling\.n_samples"):
            RunSpec.from_dict({"sampling": {"n_samples": 8.5}})
        with pytest.raises(ConfigurationError, match=r"sampling\.ard"):
            RunSpec.from_dict({"sampling": {"ard": "yes"}})

    def test_custom_strategy_requires_array(self):
        with pytest.raises(ConfigurationError, match="strategy_array"):
            RunSpec.from_dict({"tracking": {"strategy": "custom"}})
        spec = RunSpec.from_dict(
            {"tracking": {"strategy": "mine", "strategy_array": [4, 8, 16]}}
        )
        assert spec.tracking.strategy_array == (4, 8, 16)

    def test_with_overrides(self):
        spec = RunSpec().with_overrides({"runtime.n_workers": 4})
        assert spec.runtime.n_workers == 4
        # original untouched (frozen tree)
        assert RunSpec().runtime.n_workers == 1


class TestContentHash:
    def test_stable_under_key_order(self):
        a = {"sampling": {"n_samples": 10, "seed": 3}}
        b = {"sampling": {"seed": 3, "n_samples": 10}}
        assert hash_spec_dict(a) == hash_spec_dict(b)

    def test_telemetry_excluded(self):
        base = RunSpec()
        routed = base.with_overrides({"telemetry.metrics_out": "other.json"})
        assert base.content_hash() == routed.content_hash()

    def test_computation_fields_change_hash(self):
        base = RunSpec()
        assert (
            base.content_hash()
            != base.with_overrides({"tracking.max_steps": 99}).content_hash()
        )

    def test_hash_format(self):
        assert RunSpec().content_hash().startswith("sha256:")


class TestLayering:
    def test_precedence_file_then_flags_then_set(self, tmp_path):
        cfg = tmp_path / "spec.json"
        cfg.write_text(json.dumps({"runtime": {"n_workers": 2, "max_retries": 5}}))
        spec = resolve_run_spec(
            config_file=cfg,
            cli_overrides={"runtime.n_workers": 3},
            set_overrides=["runtime.n_workers=4"],
        )
        assert spec.runtime.n_workers == 4      # --set beats the flag
        assert spec.runtime.max_retries == 5    # file beats defaults
        assert spec.sampling.n_samples == 50    # default survives

    def test_set_values_parse_as_json(self):
        spec = resolve_run_spec(
            set_overrides=[
                "tracking.bidirectional=true",
                "tracking.strategy_array=[4, 8]",
                "tracking.strategy=mine",
                "runtime.shard_timeout_s=1.5",
            ]
        )
        assert spec.tracking.bidirectional is True
        assert spec.tracking.strategy_array == (4, 8)
        assert spec.tracking.strategy == "mine"  # bare word -> string
        assert spec.runtime.shard_timeout_s == 1.5

    def test_malformed_set_argument(self):
        with pytest.raises(ConfigurationError, match="dotted.key=value"):
            parse_set_argument("no_equals_sign")
        with pytest.raises(ConfigurationError, match="inside a section"):
            apply_override({}, "toplevel", 1)

    def test_deep_merge_does_not_mutate(self):
        base = {"runtime": {"n_workers": 1}}
        merged = deep_merge(base, {"runtime": {"n_workers": 8}})
        assert base["runtime"]["n_workers"] == 1
        assert merged["runtime"]["n_workers"] == 8


class TestSpecFiles:
    def test_json_file_roundtrip(self, tmp_path):
        doc = RunSpec().to_dict()
        path = tmp_path / "spec.json"
        path.write_text(dumps_json(doc))
        assert load_spec_file(path) == doc

    @pytest.mark.skipif(not HAVE_TOML, reason="no tomllib/tomli available")
    def test_toml_file_roundtrip(self, tmp_path):
        doc = RunSpec().to_dict()
        path = tmp_path / "spec.toml"
        path.write_text(dumps_toml(doc))
        loaded = load_spec_file(path)
        # None-valued fields are omitted from TOML; the resolved specs agree.
        assert RunSpec.from_dict(loaded) == RunSpec.from_dict(doc)

    def test_bad_file_names_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="broken.json"):
            load_spec_file(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="ghost"):
            load_spec_file(tmp_path / "ghost.toml")


class TestPresets:
    def test_device_and_host_lookup(self):
        for name in DEVICE_PRESETS:
            assert device_preset_name(device_preset(name)) == name
        for name in HOST_PRESETS:
            assert host_preset_name(host_preset(name)) == name

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="unknown device"):
            device_preset("voodoo2")


class TestStageConfigRoundTrips:
    def test_probtrack_roundtrip(self):
        cfg = ProbtrackConfig(
            criteria=TerminationCriteria(max_steps=300, min_dot=0.7),
            strategy=table2_strategy(),
            n_workers=3,
            bidirectional=True,
        )
        spec = RunSpec.from_dict(cfg.to_spec_dict())
        assert ProbtrackConfig.from_run_spec(spec) == cfg

    def test_probtrack_defaults_match_spec_defaults(self):
        assert ProbtrackConfig.from_run_spec(RunSpec()) == ProbtrackConfig()

    def test_bedpost_roundtrip(self):
        cfg = BedpostConfig(
            mcmc=MCMCConfig(n_burnin=100, n_samples=10, seed=9),
            n_fibers=3,
            ard=True,
            noise_model="rician",
        )
        spec = RunSpec.from_dict(cfg.to_spec_dict())
        assert BedpostConfig.from_run_spec(spec) == cfg

    def test_bedpost_defaults_match_spec_defaults(self):
        assert BedpostConfig.from_run_spec(RunSpec()) == BedpostConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"max_retries": -1},
            {"shard_timeout_s": -1.0},
            {"interpolation": "spline"},
            {"order": "shuffled"},
        ],
    )
    def test_probtrack_post_init_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProbtrackConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_fibers": 0},
            {"noise_model": "poisson"},
            {"f_threshold": -0.5},
            {"f_threshold": 1.5},
            {"block_voxels": 0},
        ],
    )
    def test_bedpost_post_init_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BedpostConfig(**kwargs)


class TestWorkflowSpec:
    def test_spec_and_stage_configs_are_mutually_exclusive(self):
        from repro.pipeline import run_workflow

        # The guard fires before the phantom is touched.
        with pytest.raises(ConfigurationError, match="not both"):
            run_workflow(None, spec=RunSpec(), bedpost_config=BedpostConfig())


class TestStrategySpec:
    @pytest.mark.parametrize("name", ["increasing", "b", "c", "single", "a4"])
    def test_named_roundtrip(self, name):
        strategy = strategy_from_spec(name)
        assert strategy_to_spec(strategy) == (name, None)

    def test_named_array_collapses_to_name(self):
        name, array = strategy_to_spec(IncreasingStrategy(table2_strategy().array))
        assert (name, array) == ("increasing", None)

    def test_custom_array_preserves_label(self):
        strategy = strategy_from_spec("mine", (4, 8, 16))
        assert isinstance(strategy, IncreasingStrategy)
        assert strategy_to_spec(strategy) == ("mine", (4, 8, 16))

    def test_uniform(self):
        strategy = strategy_from_spec("a20")
        assert isinstance(strategy, UniformStrategy)
        assert strategy.k == 20


class TestManifestProvenance:
    def test_v1_manifest_still_validates(self):
        reg = MetricsRegistry()
        reg.count("x", 1)
        doc = build_manifest(reg)
        doc.pop("config")
        doc.pop("config_hash")
        doc["schema"] = MANIFEST_SCHEMA_V1
        validate_manifest(doc)
        assert manifest_config(doc) is None

    def test_v2_hash_mismatch_rejected(self):
        doc = build_manifest(MetricsRegistry(), config=RunSpec().to_dict())
        doc["config_hash"] = "sha256:" + "0" * 64
        with pytest.raises(TelemetryError, match="config_hash"):
            validate_manifest(doc)

    def test_v2_invalid_config_rejected(self):
        doc = build_manifest(MetricsRegistry(), config=RunSpec().to_dict())
        doc["config"]["tracking"]["max_steps"] = -1
        doc["config_hash"] = hash_spec_dict_unchecked(doc["config"])
        with pytest.raises(TelemetryError, match="config"):
            validate_manifest(doc)

    def test_manifest_config_returns_spec(self):
        spec = RunSpec().with_overrides({"tracking.max_steps": 77})
        doc = build_manifest(MetricsRegistry(), config=spec.to_dict())
        assert manifest_config(doc) == spec


def hash_spec_dict_unchecked(doc):
    """Raw canonical-JSON hash without validation (test helper)."""
    import hashlib

    body = {k: v for k, v in doc.items() if k != "telemetry"}
    digest = hashlib.sha256(
        json.dumps(body, sort_keys=True).encode()
    ).hexdigest()
    return f"sha256:{digest}"


#: Table of (dotted override, which stage hashes it must move).
#: Sampling edits cascade to every downstream stage; tracking edits to
#: tracking + connectome; connectome edits move only their own stage.
#: () means execution policy or telemetry routing — no stage hash may
#: move.
STAGE_HASH_CASES = [
    ("sampling.seed", 9, ("sampling", "tracking", "connectome")),
    ("sampling.n_burnin", 99, ("sampling", "tracking", "connectome")),
    ("sampling.n_samples", 7, ("sampling", "tracking", "connectome")),
    ("sampling.sample_interval", 5, ("sampling", "tracking", "connectome")),
    ("sampling.adapt_every", 11, ("sampling", "tracking", "connectome")),
    ("sampling.n_fibers", 1, ("sampling", "tracking", "connectome")),
    ("sampling.ard", True, ("sampling", "tracking", "connectome")),
    ("sampling.noise_model", "rician", ("sampling", "tracking", "connectome")),
    ("sampling.f_threshold", 0.1, ("sampling", "tracking", "connectome")),
    ("tracking.max_steps", 7, ("tracking", "connectome")),
    ("tracking.min_dot", 0.5, ("tracking", "connectome")),
    ("tracking.step_length", 0.4, ("tracking", "connectome")),
    ("tracking.strategy", "b", ("tracking", "connectome")),
    ("tracking.engine", "fused", ("tracking", "connectome")),
    ("tracking.bidirectional", True, ("tracking", "connectome")),
    ("tracking.interpolation", "nearest", ("tracking", "connectome")),
    ("connectome.atlas", "octant", ("connectome",)),
    ("connectome.min_steps", 25, ("connectome",)),
    ("connectome.normalize", "fraction", ("connectome",)),
    # (runtime.host has a single preset, so it cannot be varied here;
    # stage_subtree coverage below proves it participates.)  The device
    # preset steers the tracking stage's modeled schedule only — the
    # connectome's CPU reference tracker is preset-independent, so its
    # hash must *not* move (an atlas sweep survives a machine change).
    ("runtime.device", "nvidia_warp32", ("tracking",)),
    ("runtime.n_workers", 8, ()),
    ("runtime.connectome_workers", 4, ()),
    ("runtime.max_retries", 9, ()),
    ("runtime.shard_timeout_s", 4.0, ()),
    ("runtime.fallback_to_serial", False, ()),
    ("runtime.fault_plan", "crash:0", ()),
    ("runtime.checkpoint_every_loops", 10, ()),
    ("telemetry.metrics_out", "m.json", ()),
    ("telemetry.store", "some/store", ()),
    ("telemetry.cache", False, ()),
]


class TestStageHashes:
    BASE = {s: stage_hash({}, s) for s in STAGES}

    @pytest.mark.parametrize(
        "path,value,moved", STAGE_HASH_CASES, ids=[c[0] for c in STAGE_HASH_CASES]
    )
    def test_edit_moves_exactly_the_right_hashes(self, path, value, moved):
        doc = RunSpec().with_overrides({path: value}).to_dict()
        for stage in STAGES:
            changed = stage_hash(doc, stage) != self.BASE[stage]
            assert changed == (stage in moved), (
                f"{path} {'moved' if changed else 'kept'} the {stage} hash"
            )

    def test_defaults_hash_like_partial_docs(self):
        # Normalization: omitted sections == explicit defaults.
        full = RunSpec().to_dict()
        for stage in STAGES:
            assert stage_hash(full, stage) == self.BASE[stage]
            assert stage_hash({"tracking": {}}, stage) == self.BASE[stage]

    def test_hash_is_stable_across_processes(self):
        # Pinned digests: any change to the canonicalization is a cache
        # invalidation event and must be deliberate.
        assert self.BASE["sampling"] == stage_hash({}, "sampling")
        assert self.BASE["sampling"].startswith("sha256:")
        assert len(self.BASE["sampling"]) == len("sha256:") + 64

    def test_subtree_contents(self):
        sub = stage_subtree({}, "sampling")
        assert set(sub) == {"sampling"}
        sub = stage_subtree({}, "tracking")
        assert set(sub) == {"sampling", "tracking", "runtime"}
        assert set(sub["runtime"]) == set(RUNTIME_DETERMINISTIC_FIELDS)
        sub = stage_subtree({}, "connectome")
        assert set(sub) == {"sampling", "tracking", "connectome"}

    def test_inputs_participate(self):
        base = stage_hash({}, "sampling")
        a = stage_hash({}, "sampling", inputs={"data": "sha256:aa"})
        b = stage_hash({}, "sampling", inputs={"data": "sha256:bb"})
        assert len({base, a, b}) == 3

    def test_unknown_stage_raises(self):
        with pytest.raises(ConfigurationError, match="unknown stage"):
            stage_hash({}, "postprocess")

    def test_non_json_inputs_raise(self):
        with pytest.raises(ConfigurationError, match="JSON-safe"):
            stage_hash({}, "sampling", inputs={"data": object()})

    def test_method_matches_function(self):
        spec = RunSpec().with_overrides({"tracking.max_steps": 9})
        assert spec.stage_hash("tracking") == stage_hash(
            spec.to_dict(), "tracking"
        )
