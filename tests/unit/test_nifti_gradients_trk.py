"""Unit tests for NIfTI-1, gradient-table, and TrackVis I/O."""

import gzip
import struct

import numpy as np
import pytest

from repro.errors import DataError, IOFormatError
from repro.io import (
    GradientTable,
    Volume,
    read_bvals_bvecs,
    read_nifti,
    read_trk,
    write_bvals_bvecs,
    write_nifti,
    write_trk,
)


class TestNifti:
    @pytest.mark.parametrize("suffix", [".nii", ".nii.gz"])
    @pytest.mark.parametrize(
        "dtype", [np.uint8, np.int16, np.int32, np.float32, np.float64]
    )
    def test_round_trip_dtypes(self, tmp_path, suffix, dtype):
        rng = np.random.default_rng(0)
        data = (rng.uniform(0, 100, size=(5, 6, 7))).astype(dtype)
        vol = Volume.from_voxel_sizes(data, (2.0, 2.0, 2.5))
        path = tmp_path / f"img{suffix}"
        write_nifti(path, vol)
        back = read_nifti(path)
        np.testing.assert_array_equal(back.data, data)
        np.testing.assert_allclose(back.affine, vol.affine, atol=1e-6)

    def test_round_trip_4d(self, tmp_path):
        data = np.arange(4 * 3 * 2 * 5, dtype=np.float32).reshape(4, 3, 2, 5)
        vol = Volume(data)
        path = tmp_path / "dwi.nii"
        write_nifti(path, vol)
        back = read_nifti(path)
        assert back.data.shape == (4, 3, 2, 5)
        np.testing.assert_array_equal(back.data, data)

    def test_fortran_order_on_disk(self, tmp_path):
        # Voxel (1,0,0) must be the *second* stored voxel (x fastest).
        data = np.zeros((2, 2, 2), dtype=np.float32)
        data[1, 0, 0] = 7.0
        path = tmp_path / "order.nii"
        write_nifti(path, Volume(data))
        raw = path.read_bytes()
        vals = np.frombuffer(raw[352 : 352 + 8 * 4], dtype="<f4")
        assert vals[1] == 7.0

    def test_affine_round_trip(self, tmp_path):
        aff = np.eye(4)
        aff[:3, 3] = [-10.0, 5.0, 2.0]
        aff[0, 0] = -2.0  # radiological flip
        vol = Volume(np.ones((3, 3, 3), dtype=np.float32), affine=aff)
        path = tmp_path / "aff.nii"
        write_nifti(path, vol)
        np.testing.assert_allclose(read_nifti(path).affine, aff, atol=1e-6)

    def test_unsupported_dtype_cast(self, tmp_path):
        vol = Volume(np.ones((2, 2, 2), dtype=np.int64))
        path = tmp_path / "c.nii"
        write_nifti(path, vol)  # casts to float32
        assert read_nifti(path).data.dtype == np.float32

    def test_complex_rejected(self, tmp_path):
        vol = Volume(np.ones((2, 2, 2), dtype=np.complex128))
        with pytest.raises(IOFormatError, match="complex"):
            write_nifti(tmp_path / "c.nii", vol)

    def test_scl_scaling_applied(self, tmp_path):
        vol = Volume(np.full((2, 2, 2), 10, dtype=np.int16))
        path = tmp_path / "scl.nii"
        write_nifti(path, vol)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<f", raw, 112, 2.0)  # scl_slope
        struct.pack_into("<f", raw, 116, 1.0)  # scl_inter
        path.write_bytes(bytes(raw))
        back = read_nifti(path)
        np.testing.assert_allclose(back.data, 21.0)
        assert back.data.dtype == np.float64

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.nii"
        path.write_bytes(b"\x00" * 400)
        with pytest.raises(IOFormatError):
            read_nifti(path)

    def test_rejects_short_file(self, tmp_path):
        path = tmp_path / "short.nii"
        path.write_bytes(b"\x00" * 10)
        with pytest.raises(IOFormatError, match="too short"):
            read_nifti(path)

    def test_rejects_truncated_data(self, tmp_path):
        vol = Volume(np.ones((4, 4, 4), dtype=np.float64))
        path = tmp_path / "trunc.nii"
        write_nifti(path, vol)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(IOFormatError, match="truncated"):
            read_nifti(path)

    def test_gzip_really_compressed(self, tmp_path):
        vol = Volume(np.zeros((8, 8, 8), dtype=np.float64))
        path = tmp_path / "z.nii.gz"
        write_nifti(path, vol)
        with gzip.open(path, "rb") as fh:
            assert len(fh.read()) > path.stat().st_size


class TestGradientTable:
    def make_table(self, n_dwi=6, n_b0=2):
        from repro.utils.geometry import fibonacci_sphere

        bvals = np.concatenate([np.zeros(n_b0), np.full(n_dwi, 1000.0)])
        bvecs = np.concatenate([np.zeros((n_b0, 3)), fibonacci_sphere(n_dwi)])
        return GradientTable(bvals, bvecs)

    def test_masks_and_counts(self):
        t = self.make_table(6, 2)
        assert len(t) == 8
        assert t.n_b0 == 2
        assert t.n_dwi == 6
        assert t.b0_mask.sum() == 2

    def test_immutability(self):
        t = self.make_table()
        with pytest.raises(ValueError):
            t.bvals[0] = 5.0

    def test_renormalizes_sloppy_bvecs(self):
        bvecs = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 1.01]])
        t = GradientTable(np.array([0.0, 1000.0]), bvecs)
        np.testing.assert_allclose(np.linalg.norm(t.bvecs[1]), 1.0)

    def test_rejects_zero_dwi_vector(self):
        with pytest.raises(DataError, match="non-zero"):
            GradientTable(np.array([1000.0]), np.zeros((1, 3)))

    def test_rejects_negative_bvals(self):
        with pytest.raises(DataError):
            GradientTable(np.array([-1.0]), np.array([[0.0, 0.0, 1.0]]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataError):
            GradientTable(np.zeros(3), np.zeros((2, 3)))

    def test_subset(self):
        t = self.make_table(6, 2)
        sub = t.subset(~t.b0_mask)
        assert len(sub) == 6
        assert sub.n_b0 == 0

    def test_fsl_file_round_trip(self, tmp_path):
        t = self.make_table(6, 2)
        write_bvals_bvecs(t, tmp_path / "bvals", tmp_path / "bvecs")
        back = read_bvals_bvecs(tmp_path / "bvals", tmp_path / "bvecs")
        np.testing.assert_allclose(back.bvals, t.bvals, atol=1e-4)
        np.testing.assert_allclose(back.bvecs, t.bvecs, atol=1e-6)

    def test_fsl_files_are_3xn(self, tmp_path):
        t = self.make_table(6, 2)
        write_bvals_bvecs(t, tmp_path / "bvals", tmp_path / "bvecs")
        assert np.loadtxt(tmp_path / "bvecs").shape == (3, 8)

    def test_read_nx3_orientation(self, tmp_path):
        np.savetxt(tmp_path / "bvals", [[0.0, 1000.0, 1000.0, 1000.0]])
        vecs = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float
        )
        np.savetxt(tmp_path / "bvecs", vecs)  # n x 3 layout
        t = read_bvals_bvecs(tmp_path / "bvals", tmp_path / "bvecs")
        np.testing.assert_allclose(t.bvecs, vecs)


class TestTrk:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(1)
        lines = [rng.uniform(0, 40, size=(n, 3)) for n in (2, 17, 99)]
        path = tmp_path / "fibers.trk"
        write_trk(path, lines, voxel_sizes=(2.0, 2.0, 2.5), dims=(48, 96, 96))
        back, meta = read_trk(path)
        assert meta["n_count"] == 3
        assert meta["dims"] == (48, 96, 96)
        assert meta["voxel_sizes"] == (2.0, 2.0, 2.5)
        for a, b in zip(lines, back):
            np.testing.assert_allclose(a, b, atol=1e-4)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.trk"
        write_trk(path, [])
        back, meta = read_trk(path)
        assert back == [] and meta["n_count"] == 0

    def test_rejects_bad_streamline_shape(self, tmp_path):
        with pytest.raises(IOFormatError):
            write_trk(tmp_path / "x.trk", [np.zeros((3, 2))])

    def test_rejects_bad_voxel_sizes(self, tmp_path):
        with pytest.raises(IOFormatError):
            write_trk(tmp_path / "x.trk", [], voxel_sizes=(0.0, 1.0, 1.0))

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trk"
        path.write_bytes(b"NOPE" + b"\x00" * 1000)
        with pytest.raises(IOFormatError, match="magic"):
            read_trk(path)

    def test_rejects_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.trk"
        write_trk(path, [np.zeros((5, 3))])
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(IOFormatError, match="truncated"):
            read_trk(path)
