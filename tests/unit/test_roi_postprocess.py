"""Tests for ROI connectivity and streamline post-processing."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.models.fields import FiberField
from repro.tracking import (
    ConnectivityAccumulator,
    SegmentedTracker,
    TargetCounter,
    TerminationCriteria,
    VisitFanout,
    box_roi,
    density_map,
    filter_by_steps,
    paper_strategy_b,
    sphere_roi,
    streamline_length_mm,
    to_world,
    tract_volume_mm3,
    track_streamline,
)
from repro.tracking.streamline import Streamline


def uniform_x_field(shape=(20, 8, 8)):
    f = np.zeros(shape + (1,))
    f[..., 0] = 0.6
    d = np.zeros(shape + (1, 3))
    d[..., 0, 0] = 1.0
    return FiberField(f=f, directions=d, mask=np.ones(shape, bool))


class TestRoiMasks:
    def test_box(self):
        m = box_roi((10, 10, 10), (2, 3, 4), (5, 6, 7))
        assert m.sum() == 27
        assert m[2, 3, 4] and m[4, 5, 6]
        assert not m[5, 3, 4]

    def test_box_validation(self):
        with pytest.raises(TrackingError):
            box_roi((10, 10, 10), (0, 0, 0), (11, 5, 5))
        with pytest.raises(TrackingError):
            box_roi((10, 10, 10), (5, 0, 0), (5, 5, 5))

    def test_sphere(self):
        m = sphere_roi((11, 11, 11), (5, 5, 5), 2.0)
        assert m[5, 5, 5] and m[7, 5, 5]
        assert not m[8, 5, 5]
        with pytest.raises(TrackingError):
            sphere_roi((5, 5, 5), (2, 2, 2), 0.0)


class TestTargetCounter:
    def test_exact_region_probability(self):
        field = uniform_x_field()
        crit = TerminationCriteria(max_steps=200, step_length=0.5)
        seeds = np.array([[2.0, 4.0, 4.0], [2.0, 6.0, 6.0]])
        # Target: a slab at the far end of seed 0's row only.
        target = np.zeros(field.shape3, bool)
        target[15:, 4, 4] = True
        counter = TargetCounter(2, target)
        SegmentedTracker().run(
            [field, field], seeds, crit, paper_strategy_b(),
            connectivity=counter,
            headings=np.tile([1.0, 0.0, 0.0], (2, 1)),
        )
        p = counter.probability()
        assert p[0] == 1.0  # seed 0 always reaches its slab
        assert p[1] == 0.0  # seed 1's row never touches it

    def test_protocol_errors(self):
        counter = TargetCounter(1, np.zeros((2, 2, 2), bool))
        with pytest.raises(TrackingError):
            counter.visit(np.array([0]), np.array([0]))
        counter.begin_sample()
        with pytest.raises(TrackingError):
            counter.begin_sample()
        counter.end_sample()
        with pytest.raises(TrackingError):
            counter.end_sample()
        with pytest.raises(TrackingError):
            TargetCounter(1, np.zeros((2, 2, 2), bool)).probability()
        with pytest.raises(TrackingError):
            TargetCounter(0, np.zeros((2, 2, 2), bool))
        with pytest.raises(TrackingError):
            TargetCounter(1, np.zeros((2, 2), bool))

    def test_fanout_feeds_both(self):
        field = uniform_x_field()
        crit = TerminationCriteria(max_steps=100, step_length=0.5)
        seeds = np.array([[2.0, 4.0, 4.0]])
        target = box_roi(field.shape3, (15, 0, 0), (20, 8, 8))
        acc = ConnectivityAccumulator(1, int(np.prod(field.shape3)))
        counter = TargetCounter(1, target)
        SegmentedTracker().run(
            [field], seeds, crit, paper_strategy_b(),
            connectivity=VisitFanout([acc, counter]),
            headings=np.array([[1.0, 0.0, 0.0]]),
        )
        assert acc.n_samples == 1 and counter.n_samples == 1
        assert acc.probability().nnz > 0
        assert counter.probability()[0] == 1.0

    def test_fanout_validation(self):
        with pytest.raises(TrackingError):
            VisitFanout([])


class TestPostprocess:
    def make_lines(self):
        field = uniform_x_field()
        crit = TerminationCriteria(max_steps=100, step_length=0.5)
        lines = []
        for x in (2.0, 5.0, 16.0):
            lines.append(
                track_streamline(
                    field, [x, 4.0, 4.0], [1.0, 0.0, 0.0], crit
                )
            )
        return lines

    def test_length_mm(self):
        line = Streamline(
            points=np.array([[0.0, 0, 0], [1.0, 0, 0], [2.0, 0, 0]]),
            reason=1,
        )
        assert streamline_length_mm(line, (2.0, 2.0, 2.0)) == pytest.approx(4.0)
        assert streamline_length_mm(line, (2.5, 1.0, 1.0)) == pytest.approx(5.0)

    def test_length_mm_degenerate(self):
        line = Streamline(points=np.zeros((1, 3)), reason=1)
        assert streamline_length_mm(line, (2.0, 2.0, 2.0)) == 0.0
        with pytest.raises(TrackingError):
            streamline_length_mm(line, (0.0, 1.0, 1.0))

    def test_filter_by_steps(self):
        lines = self.make_lines()
        steps = sorted(l.n_steps for l in lines)
        kept = filter_by_steps(lines, min_steps=steps[1])
        assert len(kept) == 2
        kept = filter_by_steps(lines, min_steps=0, max_steps=steps[0])
        assert len(kept) == 1
        with pytest.raises(TrackingError):
            filter_by_steps(lines, min_steps=-1)
        with pytest.raises(TrackingError):
            filter_by_steps(lines, min_steps=5, max_steps=2)

    def test_to_world(self):
        lines = self.make_lines()
        affine = np.eye(4)
        affine[0, 0] = 2.0
        affine[:3, 3] = [1.0, 0.0, 0.0]
        world = to_world(lines, affine)
        np.testing.assert_allclose(
            world[0][0], lines[0].points[0] * [2, 1, 1] + [1, 0, 0]
        )
        with pytest.raises(TrackingError):
            to_world(lines, np.eye(3))

    def test_density_map_dedupes_per_path(self):
        # A path taking many sub-voxel steps still counts 1 per voxel.
        lines = self.make_lines()
        dm = density_map(lines, (20, 8, 8))
        assert dm.max() <= len(lines)
        assert dm.sum() > 0
        # Voxels along y=4,z=4 get hits; elsewhere zero.
        assert dm[:, 4, 4].sum() == dm.sum()

    def test_tract_volume(self):
        dm = np.zeros((4, 4, 4), dtype=int)
        dm[0, 0, 0] = 1
        dm[1, 1, 1] = 3
        assert tract_volume_mm3(dm, (2.0, 2.0, 2.0)) == pytest.approx(16.0)
        assert tract_volume_mm3(dm, (2.0, 2.0, 2.0), min_count=2) == pytest.approx(8.0)
        with pytest.raises(TrackingError):
            tract_volume_mm3(dm, (2.0, 2.0, 2.0), min_count=0)
        with pytest.raises(TrackingError):
            tract_volume_mm3(np.zeros((2, 2)), (1, 1, 1))
