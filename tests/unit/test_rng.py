"""Unit tests for the on-device RNG substrate (repro.rng)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import (
    HybridTaus,
    box_muller,
    box_muller_pairs,
    random_memory_bytes,
    seed_streams,
)
from repro.rng.tausworthe import MIN_STATE, lcg_step, taus_step


class TestTausComponents:
    def test_taus_step_matches_reference(self):
        # Hand-computed reference for z=2**20, component (13, 19, 12, 0xFFFFFFFE).
        z = np.array([2**20], dtype=np.uint32)
        b = ((z << np.uint32(13)) ^ z) >> np.uint32(19)
        expect = ((z & np.uint32(0xFFFFFFFE)) << np.uint32(12)) ^ b
        out = taus_step(z.copy(), 13, 19, 12, 0xFFFFFFFE)
        assert out[0] == expect[0]

    def test_lcg_step_reference(self):
        z = np.array([1], dtype=np.uint32)
        out = lcg_step(z)
        assert out[0] == np.uint32(1664525 * 1 + 1013904223)

    def test_lcg_wraps_mod_2_32(self):
        z = np.array([0xFFFFFFFF], dtype=np.uint32)
        out = lcg_step(z)
        assert out[0] == np.uint32((1664525 * 0xFFFFFFFF + 1013904223) % 2**32)


class TestHybridTaus:
    def test_state_validation(self):
        with pytest.raises(ConfigurationError):
            HybridTaus(np.zeros((4, 3), dtype=np.uint32))
        with pytest.raises(ConfigurationError):
            HybridTaus(np.zeros((4, 4), dtype=np.uint64))
        bad = np.full((4, 4), 1000, dtype=np.uint32)
        bad[0, 0] = MIN_STATE - 1
        with pytest.raises(ConfigurationError, match="seed_streams"):
            HybridTaus(bad)

    def test_deterministic_given_state(self):
        g1 = seed_streams(16, seed=42)
        g2 = seed_streams(16, seed=42)
        np.testing.assert_array_equal(g1.next_uint32(), g2.next_uint32())
        np.testing.assert_array_equal(g1.uniform(), g2.uniform())

    def test_different_seeds_differ(self):
        a = seed_streams(8, seed=1).next_uint32()
        b = seed_streams(8, seed=2).next_uint32()
        assert not np.array_equal(a, b)

    def test_lanes_are_distinct(self):
        g = seed_streams(1024, seed=0)
        draws = g.next_uint32()
        # Collisions among 1024 uint32 draws are overwhelmingly unlikely.
        assert len(np.unique(draws)) > 1020

    def test_uniform_range_and_moments(self):
        g = seed_streams(256, seed=7)
        u = g.uniforms(400)  # 102400 draws
        assert u.min() >= 0.0 and u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.01
        assert abs(u.var() - 1.0 / 12.0) < 0.005

    def test_uniform_no_serial_correlation(self):
        g = seed_streams(1, seed=3)
        u = g.uniforms(20000)[:, 0]
        r = np.corrcoef(u[:-1], u[1:])[0, 1]
        assert abs(r) < 0.03

    def test_state_copy_semantics(self):
        g = seed_streams(4, seed=0)
        snapshot = g.state
        g.next_uint32()
        assert not np.array_equal(snapshot, g.state)
        g2 = HybridTaus(snapshot)
        g3 = HybridTaus(snapshot)
        np.testing.assert_array_equal(g2.next_uint32(), g3.next_uint32())

    def test_jump_advances(self):
        g1 = seed_streams(4, seed=9)
        g2 = seed_streams(4, seed=9)
        g1.jump(5)
        for _ in range(5):
            g2.next_uint32()
        np.testing.assert_array_equal(g1.next_uint32(), g2.next_uint32())

    def test_uniforms_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            seed_streams(2).uniforms(-1)

    def test_normal_moments(self):
        g = seed_streams(512, seed=11)
        z = np.concatenate([g.normal() for _ in range(100)])  # 51200 draws
        assert abs(z.mean()) < 0.02
        assert abs(z.std() - 1.0) < 0.02
        # Fourth moment of N(0,1) is 3.
        assert abs((z**4).mean() - 3.0) < 0.15


class TestBoxMuller:
    def test_pairs_are_standard_normal(self):
        rng = np.random.default_rng(0)
        u1, u2 = rng.uniform(size=(2, 50000))
        z1, z2 = box_muller_pairs(u1, u2)
        for z in (z1, z2):
            assert abs(z.mean()) < 0.02
            assert abs(z.std() - 1.0) < 0.02
        assert abs(np.corrcoef(z1, z2)[0, 1]) < 0.02

    def test_single_branch_matches_pair(self):
        u1 = np.array([0.3, 0.9])
        u2 = np.array([0.1, 0.7])
        np.testing.assert_allclose(box_muller(u1, u2), box_muller_pairs(u1, u2)[0])

    def test_zero_uniform_is_finite(self):
        z = box_muller(np.array([0.0]), np.array([0.25]))
        assert np.all(np.isfinite(z))


class TestSeedingAndSizing:
    def test_seed_streams_rejects_zero_threads(self):
        with pytest.raises(ConfigurationError):
            seed_streams(0)

    def test_memory_sizing_paper_example(self):
        # Paper: NumBurnIn=500, L=2, NumSamples=250, 9 params, >200k voxels
        # => > 20 GB of pre-generated uniforms.
        size = random_memory_bytes(n_voxels=205_082)
        assert size > 20 * 1e9

    def test_memory_sizing_formula(self):
        # 10 voxels * (5 + 2*3) loops * 2 params * 3 numbers * 4 bytes
        assert random_memory_bytes(10, 5, 2, 3, 2) == 10 * 11 * 2 * 3 * 4

    def test_memory_sizing_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            random_memory_bytes(-1)


class TestBlockStreams:
    """block_streams(n, a, b) == seed_streams(n).state[a:b] bit for bit —
    the sliceable-seeding property bedpost's voxel-block sharding rests on."""

    @pytest.mark.parametrize(
        "n_total,start,stop",
        [(1, 0, 1), (137, 0, 137), (137, 0, 1), (137, 100, 137), (137, 64, 65)],
    )
    @pytest.mark.parametrize("seed", [0, 42])
    def test_matches_full_state_slice(self, n_total, start, stop, seed):
        from repro.rng import block_streams

        full = seed_streams(n_total, seed=seed)
        block = block_streams(n_total, start, stop, seed=seed)
        np.testing.assert_array_equal(full.state[start:stop], block.state)

    def test_draws_match_full_generator_lanes(self):
        from repro.rng import block_streams

        full = seed_streams(64, seed=9)
        block = block_streams(64, 17, 40, seed=9)
        np.testing.assert_array_equal(
            full.uniforms(8)[:, 17:40], block.uniforms(8)
        )

    def test_rejects_bad_spans(self):
        from repro.rng import block_streams

        for n_total, start, stop in [(4, -1, 2), (4, 2, 2), (4, 3, 5), (0, 0, 1)]:
            with pytest.raises(ConfigurationError):
                block_streams(n_total, start, stop)
