"""Unit tests for :mod:`repro.telemetry` and the profiling adapters."""

import json

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.gpu.timeline import Timeline
from repro.gpu.trace_export import spans_to_trace_events, write_chrome_trace
from repro.telemetry import (
    MANIFEST_SCHEMA,
    MetricsRegistry,
    build_manifest,
    deterministic_sections,
    get_registry,
    load_manifest,
    manifest_from_json,
    manifest_to_json,
    set_registry,
    use_registry,
    validate_manifest,
    write_manifest,
)
from repro.utils.profiling import Stopwatch, TimingAccumulator


class TestCounters:
    def test_count_accumulates(self):
        reg = MetricsRegistry()
        reg.count("a.b", 3)
        reg.count("a.b", 2)
        assert reg.counter("a.b").value == 5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.count("a.b", -1)

    def test_determinism_class_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.count("a.b", 1)
        with pytest.raises(TelemetryError):
            reg.count("a.b", 1, deterministic=False)


class TestHistograms:
    def test_fixed_edges_and_overflow_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", edges=(1, 10, 100))
        h.observe_many([0, 1, 5, 50, 500])
        assert h.counts == [2, 1, 1, 1]  # (..1], (1,10], (10,100], (100..)
        assert h.n == 5

    def test_edge_drift_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1, 2))
        with pytest.raises(TelemetryError):
            reg.histogram("h", edges=(1, 3))

    def test_unsorted_edges_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.histogram("h", edges=(5, 1))

    def test_observe_many_matches_observe(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        values = np.arange(0, 50, 3)
        ha = a.histogram("h", edges=(5, 20, 40))
        hb = b.histogram("h", edges=(5, 20, 40))
        ha.observe_many(values)
        for v in values:
            hb.observe(v)
        assert ha.counts == hb.counts


class TestSpans:
    def test_nesting_records_parent(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner", step=1):
                pass
        assert [s.name for s in reg.spans] == ["outer", "inner"]
        assert reg.spans[0].parent is None
        assert reg.spans[1].parent == 0
        assert reg.spans[1].attrs == {"step": 1}

    def test_span_folds_into_timers(self):
        reg = MetricsRegistry()
        with reg.span("stage"):
            pass
        total, count = reg.timers["stage"]
        assert count == 1
        assert total >= 0.0

    def test_sibling_spans_share_parent(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("a"):
                pass
            with reg.span("b"):
                pass
        assert reg.spans[1].parent == 0
        assert reg.spans[2].parent == 0


class TestMerge:
    def make(self):
        reg = MetricsRegistry()
        reg.count("c", 10)
        reg.count("ops", 2, deterministic=False)
        reg.histogram("h", edges=(1, 5)).observe_many([0, 3, 9])
        reg.gauge("g").set_max(7.0)
        reg.add_time("t", 0.5)
        with reg.span("s"):
            pass
        return reg

    def test_merge_adds_counters_and_buckets(self):
        a, b = self.make(), self.make()
        a.merge(b, worker=1)
        assert a.counter("c").value == 20
        assert a.counters["ops"].value == 4
        assert a.histograms["h"].counts == [2, 2, 2]
        assert a.histograms["h"].n == 6

    def test_merge_gauges_by_max_and_timers_by_sum(self):
        a, b = self.make(), self.make()
        b.gauge("g").set_max(11.0)
        a.merge(b, worker=1)
        assert a.gauges["g"].value == 11.0
        assert a.timers["t"] == [1.0, 2]

    def test_merge_tags_and_reindexes_spans(self):
        a, b = self.make(), self.make()
        with b.span("outer"):
            with b.span("inner"):
                pass
        a.merge(b, worker=3)
        merged = a.spans[1:]  # a's own span is index 0
        assert all(s.worker == 3 for s in merged)
        inner = next(s for s in merged if s.name == "inner")
        assert a.spans[inner.parent].name == "outer"

    def test_merge_is_order_sensitive_only_for_spans(self):
        """Counters/histograms commute; the task-order rule is about
        reproducing one canonical order, not about non-commutativity."""
        x, y = self.make(), self.make()
        y.count("c", 5)
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(x), ab.merge(y)
        ba.merge(y), ba.merge(x)
        assert ab.counter("c").value == ba.counter("c").value == 25


class TestRegistryInjection:
    def test_use_registry_scopes_and_restores(self):
        before = get_registry()
        mine = MetricsRegistry()
        with use_registry(mine):
            assert get_registry() is mine
            get_registry().count("x", 1)
        assert get_registry() is before
        assert mine.counter("x").value == 1

    def test_set_registry_returns_previous(self):
        before = get_registry()
        mine = MetricsRegistry()
        prev = set_registry(mine)
        try:
            assert prev is before
            assert get_registry() is mine
        finally:
            set_registry(before)


class TestManifest:
    def make_doc(self):
        reg = MetricsRegistry()
        reg.count("c", 4)
        reg.count("o", 1, deterministic=False)
        reg.histogram("h", edges=(1,)).observe(0)
        with reg.span("s"):
            pass
        return build_manifest(reg, meta={"command": "test"})

    def test_round_trip(self):
        doc = self.make_doc()
        again = manifest_from_json(manifest_to_json(doc))
        assert again == doc
        assert again["schema"] == MANIFEST_SCHEMA

    def test_write_and_load(self, tmp_path):
        reg = MetricsRegistry()
        reg.count("c", 4)
        path = tmp_path / "run.json"
        written = write_manifest(path, reg, meta={"k": "v"})
        loaded = load_manifest(path)
        assert loaded == written
        assert loaded["meta"] == {"k": "v"}

    def test_missing_key_rejected(self):
        doc = self.make_doc()
        del doc["counters"]
        with pytest.raises(TelemetryError, match="missing keys"):
            validate_manifest(doc)

    def test_unknown_schema_rejected(self):
        doc = self.make_doc()
        doc["schema"] = "something/2"
        with pytest.raises(TelemetryError, match="schema"):
            validate_manifest(doc)

    def test_float_counter_rejected(self):
        doc = self.make_doc()
        doc["counters"]["c"] = 1.5
        with pytest.raises(TelemetryError, match="int"):
            validate_manifest(doc)

    def test_histogram_bucket_mismatch_rejected(self):
        doc = self.make_doc()
        doc["histograms"]["h"]["counts"] = [1]
        with pytest.raises(TelemetryError, match="buckets"):
            validate_manifest(doc)

    def test_bad_span_parent_rejected(self):
        doc = self.make_doc()
        doc["spans"][0]["parent"] = 5
        with pytest.raises(TelemetryError, match="parent"):
            validate_manifest(doc)

    def test_bad_json_rejected(self):
        with pytest.raises(TelemetryError, match="JSON"):
            manifest_from_json("{not json")

    def test_deterministic_sections_subset(self):
        doc = self.make_doc()
        det = deterministic_sections(doc)
        assert set(det) == {"counters", "histograms"}
        assert "o" not in det["counters"]


class TestTraceSpanExport:
    def test_spans_land_on_measured_rows(self, tmp_path):
        tl = Timeline()
        tl.add("kernel", "seg0", 0.5)
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        reg.spans[1].worker = 2
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tl, spans=reg.spans)
        doc = json.loads(path.read_text())
        rows = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert {"measured:main", "measured:worker2"} <= rows
        measured = [e for e in doc["traceEvents"] if e.get("cat") == "measured"]
        assert {e["name"] for e in measured} == {"outer", "inner"}

    def test_dict_spans_accepted(self):
        reg = MetricsRegistry()
        with reg.span("s", foo="bar"):
            pass
        events = spans_to_trace_events(reg.snapshot()["spans"])
        assert events[0]["name"] == "s"
        assert events[0]["args"]["foo"] == "bar"
        assert events[0]["ts"] == 0.0  # rebased to the earliest span

    def test_no_spans_no_measured_rows(self, tmp_path):
        tl = Timeline()
        tl.add("kernel", "seg0", 0.5)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tl)
        doc = json.loads(path.read_text())
        assert not [e for e in doc["traceEvents"] if e.get("cat") == "measured"]


class TestProfilingAdapters:
    def test_stopwatch_reentry_raises(self):
        sw = Stopwatch()
        with sw:
            with pytest.raises(RuntimeError, match="already running"):
                sw.__enter__()

    def test_stopwatch_unentered_exit_raises(self):
        with pytest.raises(RuntimeError, match="never entered"):
            Stopwatch().__exit__(None, None, None)

    def test_accumulator_is_a_registry_view(self):
        reg = MetricsRegistry()
        acc = TimingAccumulator(registry=reg)
        acc.add("stage", 0.25)
        reg.add_time("stage", 0.75)
        assert acc.totals == {"stage": 1.0}
        assert acc.counts == {"stage": 2}

    def test_accumulator_merge(self):
        a, b = TimingAccumulator(), TimingAccumulator()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.totals == {"x": 3.0, "y": 3.0}
        assert a.counts == {"x": 2, "y": 1}


class TestCompareManifests:
    @staticmethod
    def _manifest(counter_value, hist_counts):
        reg = MetricsRegistry()
        reg.count("tracking.steps", counter_value)
        h = reg.histogram("tracking.lengths", edges=(2, 5))
        for bucket, n in zip(("low", "mid", "high"), hist_counts):
            values = {"low": 1, "mid": 3, "high": 9}[bucket]
            h.observe_many([values] * n)
        return build_manifest(reg, meta={})

    def test_identical_runs_agree(self):
        from repro.analysis import compare_manifests

        a = self._manifest(10, (1, 2, 3))
        b = self._manifest(10, (1, 2, 3))
        diff = compare_manifests(a, b)
        assert diff.identical
        assert diff.counter_diffs == {}
        assert diff.histogram_diffs == []

    def test_counter_and_histogram_drift_reported(self):
        from repro.analysis import compare_manifests

        a = self._manifest(10, (1, 2, 3))
        b = self._manifest(12, (1, 2, 4))
        diff = compare_manifests(a, b)
        assert not diff.identical
        assert diff.counter_diffs == {"tracking.steps": (10, 12)}
        assert diff.histogram_diffs == ["tracking.lengths"]

    def test_missing_counter_treated_as_zero(self):
        from repro.analysis import compare_manifests

        a = self._manifest(10, (0, 0, 0))
        b = self._manifest(10, (0, 0, 0))
        extra = MetricsRegistry()
        extra.count("tracking.steps", 10)
        extra.count("mcmc.accepts", 7)
        extra.histogram("tracking.lengths", edges=(2, 5))
        c = build_manifest(extra, meta={})
        diff = compare_manifests(a, c)
        assert diff.counter_diffs == {"mcmc.accepts": (0, 7)}
