"""Tests for the model extensions: Rician likelihood, nonlinear fitting."""

import numpy as np
import pytest
from scipy.stats import rice

from repro.errors import ModelError
from repro.io import GradientTable
from repro.models import LogPosterior, MultiFiberModel, gaussian_loglike, rician_loglike
from repro.models.fitting import fit_ball_stick
from repro.utils.geometry import fibonacci_sphere, spherical_to_cartesian


@pytest.fixture
def gtab():
    bvals = np.concatenate([np.zeros(3), np.full(28, 1000.0)])
    bvecs = np.concatenate([np.zeros((3, 3)), fibonacci_sphere(28)])
    return GradientTable(bvals, bvecs)


class TestRicianLoglike:
    def test_matches_scipy_rice(self):
        rng = np.random.default_rng(0)
        mu = np.abs(rng.normal(10, 2, size=(3, 6)))
        sigma = np.array([1.0, 2.0, 0.5])
        data = np.abs(rng.normal(10, 2, size=(3, 6)))
        ll = rician_loglike(data, mu, sigma)
        expect = np.array(
            [
                rice.logpdf(data[i], mu[i] / sigma[i], scale=sigma[i]).sum()
                for i in range(3)
            ]
        )
        np.testing.assert_allclose(ll, expect, rtol=1e-10)

    def test_high_snr_approaches_gaussian(self):
        # At SNR 100 the Rician and Gaussian log-likelihood differences
        # across nearby mu values agree closely.
        rng = np.random.default_rng(1)
        mu = np.full((1, 20), 1000.0)
        data = mu + rng.normal(scale=10.0, size=mu.shape)
        sigma = np.array([10.0])
        dg = gaussian_loglike(data, mu, sigma) - gaussian_loglike(
            data, mu * 1.01, sigma
        )
        dr = rician_loglike(data, mu, sigma) - rician_loglike(
            data, mu * 1.01, sigma
        )
        np.testing.assert_allclose(dr, dg, rtol=0.02)

    def test_low_snr_differs_from_gaussian(self):
        # Near zero signal the Rician density is Rayleigh-like and the
        # Gaussian approximation is visibly wrong.
        data = np.full((1, 50), 1.2)
        sigma = np.array([1.0])
        mu0 = np.zeros((1, 50))
        g = gaussian_loglike(data, mu0, sigma)
        r = rician_loglike(data, mu0, sigma)
        assert abs(float(g[0] - r[0])) > 1.0

    def test_nonpositive_data_is_minus_inf(self):
        ll = rician_loglike(
            np.array([[0.0, 1.0]]), np.ones((1, 2)), np.array([1.0])
        )
        assert np.isneginf(ll[0])

    def test_nonpositive_sigma_is_minus_inf(self):
        ll = rician_loglike(np.ones((1, 2)), np.ones((1, 2)), np.array([0.0]))
        assert np.isneginf(ll[0])

    def test_overflow_free_at_huge_snr(self):
        ll = rician_loglike(
            np.array([[1e6]]), np.array([[1e6]]), np.array([1.0])
        )
        assert np.isfinite(ll[0])

    def test_shape_validation(self):
        with pytest.raises(ModelError):
            rician_loglike(np.ones((1, 2)), np.ones((1, 3)), np.ones(1))
        with pytest.raises(ModelError):
            rician_loglike(np.ones((1, 2)), np.ones((1, 2)), np.ones(2))


class TestRicianPosterior:
    def test_noise_model_option(self, gtab):
        rng = np.random.default_rng(2)
        model = MultiFiberModel(2)
        mu = model.predict(
            gtab,
            s0=np.full(3, 500.0),
            d=np.full(3, 1e-3),
            f=np.tile([0.5, 0.1], (3, 1)),
            theta=np.tile([1.2, 0.4], (3, 1)),
            phi=np.tile([0.3, 2.0], (3, 1)),
        )
        data = np.abs(mu + rng.normal(scale=20.0, size=mu.shape))
        g = LogPosterior(gtab, data, noise_model="gaussian")
        r = LogPosterior(gtab, data, noise_model="rician")
        params = g.initial_params()
        lg, lr = g(params), r(params)
        assert np.all(np.isfinite(lg)) and np.all(np.isfinite(lr))
        assert not np.allclose(lg, lr)

    def test_unknown_noise_model_rejected(self, gtab):
        with pytest.raises(ModelError):
            LogPosterior(gtab, np.ones((1, 31)), noise_model="poisson")

    def test_rician_sampler_runs(self, gtab):
        from repro.mcmc import MCMCConfig, MCMCSampler

        rng = np.random.default_rng(3)
        model = MultiFiberModel(2)
        mu = model.predict(
            gtab,
            s0=np.full(2, 500.0),
            d=np.full(2, 1e-3),
            f=np.tile([0.5, 0.0], (2, 1)),
            theta=np.tile([np.pi / 2, 1.0], (2, 1)),
            phi=np.tile([0.0, 1.0], (2, 1)),
        )
        data = np.abs(mu + rng.normal(scale=10.0, size=mu.shape))
        post = LogPosterior(gtab, data, noise_model="rician")
        res = MCMCSampler(MCMCConfig(n_burnin=30, n_samples=5)).run(post)
        assert np.all(np.isfinite(post(res.samples[-1])))

    def test_scalar_lockstep_agree_rician(self, gtab):
        from repro.mcmc import MCMCConfig, MCMCSampler

        rng = np.random.default_rng(4)
        data = np.abs(rng.normal(300, 30, size=(2, 31)))
        post = LogPosterior(gtab, data, noise_model="rician")
        cfg = MCMCConfig(n_burnin=10, n_samples=3, sample_interval=1)
        lock = MCMCSampler(cfg).run(post)
        scal = MCMCSampler(cfg).run_scalar(post)
        np.testing.assert_allclose(lock.samples, scal.samples, rtol=1e-10)


class TestBallStickFit:
    def make_signal(self, gtab, f=0.55, theta=1.1, phi=0.7, s0=800.0, d=1.2e-3):
        return MultiFiberModel(1).predict(
            gtab,
            s0=np.array([s0]),
            d=np.array([d]),
            f=np.array([[f]]),
            theta=np.array([[theta]]),
            phi=np.array([[phi]]),
        )[0]

    def test_recovers_single_fiber_noiseless(self, gtab):
        sig = self.make_signal(gtab)
        fit = fit_ball_stick(gtab, sig, n_fibers=1)
        assert fit.s0 == pytest.approx(800.0, rel=1e-3)
        assert fit.d == pytest.approx(1.2e-3, rel=1e-2)
        assert fit.f[0] == pytest.approx(0.55, abs=0.02)
        v_true = spherical_to_cartesian(1.1, 0.7)
        v_fit = spherical_to_cartesian(fit.theta[0], fit.phi[0])
        assert abs(np.dot(v_true, v_fit)) > 0.999
        assert fit.residual_rms < 1.0

    def test_recovers_with_noise(self, gtab):
        rng = np.random.default_rng(5)
        sig = self.make_signal(gtab) + rng.normal(scale=8.0, size=len(gtab))
        fit = fit_ball_stick(gtab, np.abs(sig), n_fibers=1)
        assert fit.f[0] == pytest.approx(0.55, abs=0.1)
        v_true = spherical_to_cartesian(1.1, 0.7)
        v_fit = spherical_to_cartesian(fit.theta[0], fit.phi[0])
        assert abs(np.dot(v_true, v_fit)) > 0.98

    def test_two_fiber_crossing(self, gtab):
        # Crossing resolution needs b ~ 2000+.
        from repro.data import make_gradient_table

        g2 = make_gradient_table(n_directions=48, bvalue=2500.0, n_b0=4)
        mu = MultiFiberModel(2).predict(
            g2,
            s0=np.array([500.0]),
            d=np.array([1e-3]),
            f=np.array([[0.45, 0.45]]),
            theta=np.array([[np.pi / 2, np.pi / 2]]),
            phi=np.array([[0.0, np.pi / 3]]),
        )[0]
        fit = fit_ball_stick(g2, mu, n_fibers=2)
        v1 = spherical_to_cartesian(fit.theta[0], fit.phi[0])
        v2 = spherical_to_cartesian(fit.theta[1], fit.phi[1])
        t1 = spherical_to_cartesian(np.pi / 2, 0.0)
        t2 = spherical_to_cartesian(np.pi / 2, np.pi / 3)
        hits = {
            max(abs(np.dot(v1, t1)), abs(np.dot(v2, t1))) > 0.97,
            max(abs(np.dot(v1, t2)), abs(np.dot(v2, t2))) > 0.97,
        }
        assert hits == {True}
        assert fit.f.sum() == pytest.approx(0.9, abs=0.1)

    def test_fractions_descending_and_in_simplex(self, gtab):
        sig = self.make_signal(gtab)
        fit = fit_ball_stick(gtab, sig, n_fibers=2)
        assert fit.f[0] >= fit.f[1] >= 0.0
        assert fit.f.sum() <= 1.0

    def test_canonical_angles(self, gtab):
        sig = self.make_signal(gtab, theta=2.8, phi=4.0)  # lower hemisphere
        fit = fit_ball_stick(gtab, sig, n_fibers=1)
        assert 0.0 <= fit.theta[0] <= np.pi / 2 + 1e-9  # folded to z >= 0
        assert 0.0 <= fit.phi[0] < 2 * np.pi

    def test_validation(self, gtab):
        with pytest.raises(ModelError):
            fit_ball_stick(gtab, np.ones(5))
        with pytest.raises(ModelError):
            fit_ball_stick(gtab, np.ones(len(gtab)), n_fibers=0)
        bad = np.ones(len(gtab))
        bad[0] = 0.0
        with pytest.raises(ModelError):
            fit_ball_stick(gtab, bad)
