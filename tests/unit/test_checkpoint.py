"""Tests for sampler checkpoint/resume (repro.mcmc.checkpoint)."""

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.io import GradientTable
from repro.mcmc import MCMCConfig, MCMCSampler, SamplerCheckpoint
from repro.models import LogPosterior, MultiFiberModel
from repro.rng import seed_streams
from repro.utils.geometry import fibonacci_sphere


@pytest.fixture
def posterior():
    bvals = np.concatenate([np.zeros(2), np.full(20, 1000.0)])
    bvecs = np.concatenate([np.zeros((2, 3)), fibonacci_sphere(20)])
    gtab = GradientTable(bvals, bvecs)
    rng = np.random.default_rng(0)
    mu = MultiFiberModel(2).predict(
        gtab,
        s0=np.full(3, 100.0),
        d=np.full(3, 1e-3),
        f=np.tile([0.5, 0.0], (3, 1)),
        theta=np.tile([np.pi / 2, 1.0], (3, 1)),
        phi=np.tile([0.0, 1.0], (3, 1)),
    )
    return LogPosterior(gtab, mu + rng.normal(scale=4.0, size=mu.shape))


CFG = MCMCConfig(n_burnin=20, n_samples=6, sample_interval=2, adapt_every=7)


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, posterior):
        full = MCMCSampler(CFG).run(posterior)

        part = MCMCSampler(CFG).run(posterior, stop_after_loop=13)
        assert part.checkpoint is not None
        assert part.n_loops == 13
        resumed = MCMCSampler(CFG).run(posterior, checkpoint=part.checkpoint)
        assert resumed.checkpoint is None
        np.testing.assert_array_equal(full.samples, resumed.samples)
        np.testing.assert_allclose(
            full.acceptance_history, resumed.acceptance_history
        )

    def test_pause_mid_sampling_phase(self, posterior):
        full = MCMCSampler(CFG).run(posterior)
        part = MCMCSampler(CFG).run(posterior, stop_after_loop=26)
        assert part.samples.shape[0] == 3  # loops 22, 24, 26 recorded
        resumed = MCMCSampler(CFG).run(posterior, checkpoint=part.checkpoint)
        np.testing.assert_array_equal(full.samples, resumed.samples)

    def test_double_pause(self, posterior):
        full = MCMCSampler(CFG).run(posterior)
        a = MCMCSampler(CFG).run(posterior, stop_after_loop=9)
        b = MCMCSampler(CFG).run(
            posterior, checkpoint=a.checkpoint, stop_after_loop=25
        )
        c = MCMCSampler(CFG).run(posterior, checkpoint=b.checkpoint)
        np.testing.assert_array_equal(full.samples, c.samples)

    def test_save_load_round_trip(self, posterior, tmp_path):
        full = MCMCSampler(CFG).run(posterior)
        part = MCMCSampler(CFG).run(posterior, stop_after_loop=15)
        path = tmp_path / "ckpt.npz"
        part.checkpoint.save(path)
        restored = SamplerCheckpoint.load(path)
        resumed = MCMCSampler(CFG).run(posterior, checkpoint=restored)
        np.testing.assert_array_equal(full.samples, resumed.samples)

    def test_stop_at_end_yields_no_checkpoint(self, posterior):
        res = MCMCSampler(CFG).run(posterior, stop_after_loop=CFG.n_loops)
        assert res.checkpoint is None
        assert res.samples.shape[0] == CFG.n_samples

    def test_validation(self, posterior):
        with pytest.raises(SamplerError, match="outside"):
            MCMCSampler(CFG).run(posterior, stop_after_loop=1000)
        part = MCMCSampler(CFG).run(posterior, stop_after_loop=10)
        with pytest.raises(SamplerError, match="not both"):
            MCMCSampler(CFG).run(
                posterior,
                checkpoint=part.checkpoint,
                rng=seed_streams(3),
            )
        with pytest.raises(SamplerError, match="outside"):
            MCMCSampler(CFG).run(
                posterior, checkpoint=part.checkpoint, stop_after_loop=5
            )

    def test_checkpoint_shape_validation(self, posterior):
        part = MCMCSampler(CFG).run(posterior, stop_after_loop=10)
        ck = part.checkpoint
        with pytest.raises(SamplerError):
            SamplerCheckpoint(
                params=ck.params,
                log_posterior=ck.log_posterior[:-1],
                rng_state=ck.rng_state,
                proposal_sigma=ck.proposal_sigma,
                window_accepted=ck.window_accepted,
                window_rejected=ck.window_rejected,
                loop=ck.loop,
                taken=ck.taken,
                samples=ck.samples,
            )
        with pytest.raises(SamplerError):
            SamplerCheckpoint(
                params=ck.params,
                log_posterior=ck.log_posterior,
                rng_state=ck.rng_state,
                proposal_sigma=ck.proposal_sigma,
                window_accepted=ck.window_accepted,
                window_rejected=ck.window_rejected,
                loop=-1,
                taken=ck.taken,
                samples=ck.samples,
            )
