"""Tests for sampler checkpoint/resume (repro.mcmc.checkpoint).

Includes the store-backed regression scenario: a ``bedpost`` run killed
mid-sampling resumes from its on-disk checkpoint and reproduces the
uninterrupted posterior bit for bit (counters included).
"""

import json

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.io import GradientTable
from repro.mcmc import MCMCConfig, MCMCSampler, SamplerCheckpoint
from repro.models import LogPosterior, MultiFiberModel
from repro.rng import seed_streams
from repro.utils.geometry import fibonacci_sphere


@pytest.fixture
def posterior():
    bvals = np.concatenate([np.zeros(2), np.full(20, 1000.0)])
    bvecs = np.concatenate([np.zeros((2, 3)), fibonacci_sphere(20)])
    gtab = GradientTable(bvals, bvecs)
    rng = np.random.default_rng(0)
    mu = MultiFiberModel(2).predict(
        gtab,
        s0=np.full(3, 100.0),
        d=np.full(3, 1e-3),
        f=np.tile([0.5, 0.0], (3, 1)),
        theta=np.tile([np.pi / 2, 1.0], (3, 1)),
        phi=np.tile([0.0, 1.0], (3, 1)),
    )
    return LogPosterior(gtab, mu + rng.normal(scale=4.0, size=mu.shape))


CFG = MCMCConfig(n_burnin=20, n_samples=6, sample_interval=2, adapt_every=7)


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, posterior):
        full = MCMCSampler(CFG).run(posterior)

        part = MCMCSampler(CFG).run(posterior, stop_after_loop=13)
        assert part.checkpoint is not None
        assert part.n_loops == 13
        resumed = MCMCSampler(CFG).run(posterior, checkpoint=part.checkpoint)
        assert resumed.checkpoint is None
        np.testing.assert_array_equal(full.samples, resumed.samples)
        np.testing.assert_allclose(
            full.acceptance_history, resumed.acceptance_history
        )

    def test_pause_mid_sampling_phase(self, posterior):
        full = MCMCSampler(CFG).run(posterior)
        part = MCMCSampler(CFG).run(posterior, stop_after_loop=26)
        assert part.samples.shape[0] == 3  # loops 22, 24, 26 recorded
        resumed = MCMCSampler(CFG).run(posterior, checkpoint=part.checkpoint)
        np.testing.assert_array_equal(full.samples, resumed.samples)

    def test_double_pause(self, posterior):
        full = MCMCSampler(CFG).run(posterior)
        a = MCMCSampler(CFG).run(posterior, stop_after_loop=9)
        b = MCMCSampler(CFG).run(
            posterior, checkpoint=a.checkpoint, stop_after_loop=25
        )
        c = MCMCSampler(CFG).run(posterior, checkpoint=b.checkpoint)
        np.testing.assert_array_equal(full.samples, c.samples)

    def test_save_load_round_trip(self, posterior, tmp_path):
        full = MCMCSampler(CFG).run(posterior)
        part = MCMCSampler(CFG).run(posterior, stop_after_loop=15)
        path = tmp_path / "ckpt.npz"
        part.checkpoint.save(path)
        restored = SamplerCheckpoint.load(path)
        resumed = MCMCSampler(CFG).run(posterior, checkpoint=restored)
        np.testing.assert_array_equal(full.samples, resumed.samples)

    def test_stop_at_end_yields_no_checkpoint(self, posterior):
        res = MCMCSampler(CFG).run(posterior, stop_after_loop=CFG.n_loops)
        assert res.checkpoint is None
        assert res.samples.shape[0] == CFG.n_samples

    def test_validation(self, posterior):
        with pytest.raises(SamplerError, match="outside"):
            MCMCSampler(CFG).run(posterior, stop_after_loop=1000)
        part = MCMCSampler(CFG).run(posterior, stop_after_loop=10)
        with pytest.raises(SamplerError, match="not both"):
            MCMCSampler(CFG).run(
                posterior,
                checkpoint=part.checkpoint,
                rng=seed_streams(3),
            )
        with pytest.raises(SamplerError, match="outside"):
            MCMCSampler(CFG).run(
                posterior, checkpoint=part.checkpoint, stop_after_loop=5
            )

    def test_checkpoint_shape_validation(self, posterior):
        part = MCMCSampler(CFG).run(posterior, stop_after_loop=10)
        ck = part.checkpoint
        with pytest.raises(SamplerError):
            SamplerCheckpoint(
                params=ck.params,
                log_posterior=ck.log_posterior[:-1],
                rng_state=ck.rng_state,
                proposal_sigma=ck.proposal_sigma,
                window_accepted=ck.window_accepted,
                window_rejected=ck.window_rejected,
                loop=ck.loop,
                taken=ck.taken,
                samples=ck.samples,
            )
        with pytest.raises(SamplerError):
            SamplerCheckpoint(
                params=ck.params,
                log_posterior=ck.log_posterior,
                rng_state=ck.rng_state,
                proposal_sigma=ck.proposal_sigma,
                window_accepted=ck.window_accepted,
                window_rejected=ck.window_rejected,
                loop=-1,
                taken=ck.taken,
                samples=ck.samples,
            )


class TestAtomicSaveLoad:
    def test_save_leaves_no_tmp(self, posterior, tmp_path):
        part = MCMCSampler(CFG).run(posterior, stop_after_loop=15)
        path = tmp_path / "ckpt.npz"
        part.checkpoint.save(path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]

    def test_overwrite_is_atomic(self, posterior, tmp_path):
        a = MCMCSampler(CFG).run(posterior, stop_after_loop=9)
        path = tmp_path / "ckpt.npz"
        a.checkpoint.save(path)
        b = MCMCSampler(CFG).run(
            posterior, checkpoint=a.checkpoint, stop_after_loop=25
        )
        b.checkpoint.save(path)
        assert SamplerCheckpoint.load(path).loop == 25
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]

    def test_rng_state_round_trips_exactly(self, posterior, tmp_path):
        part = MCMCSampler(CFG).run(posterior, stop_after_loop=15)
        path = tmp_path / "ckpt.npz"
        part.checkpoint.save(path)
        restored = SamplerCheckpoint.load(path)
        assert restored.rng_state.dtype == part.checkpoint.rng_state.dtype
        np.testing.assert_array_equal(
            restored.rng_state, part.checkpoint.rng_state
        )

    def test_corrupt_file_raises_sampler_error(self, posterior, tmp_path):
        path = tmp_path / "ckpt.npz"
        path.write_bytes(b"definitely not an npz archive")
        with pytest.raises(SamplerError, match="corrupt"):
            SamplerCheckpoint.load(path)

        part = MCMCSampler(CFG).run(posterior, stop_after_loop=15)
        part.checkpoint.save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # truncated mid-write
        with pytest.raises(SamplerError, match="corrupt"):
            SamplerCheckpoint.load(path)


@pytest.fixture(scope="module")
def phantom():
    from repro.data import dataset1

    return dataset1(scale=0.15, snr=40.0)


def _bedpost_cfg():
    from repro.pipeline import BedpostConfig

    return BedpostConfig(mcmc=CFG)


class TestInterruptedBedpostResume:
    """Regression: checkpoint/resume through an injected interrupt."""

    def _baseline(self, phantom):
        from repro.pipeline import bedpost
        from repro.telemetry import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            result = bedpost(
                phantom.dwi, phantom.gtab, phantom.mask, _bedpost_cfg()
            )
        return result, registry

    def _det(self, registry):
        snap = registry.snapshot()
        return json.dumps(
            {"counters": snap["counters"], "histograms": snap["histograms"]},
            sort_keys=True,
        )

    def test_resume_after_interrupt_is_bit_identical(self, phantom, tmp_path):
        from repro.pipeline import bedpost
        from repro.store import ArtifactStore
        from repro.telemetry import MetricsRegistry, use_registry

        baseline, base_reg = self._baseline(phantom)
        store = ArtifactStore(tmp_path / "store")

        def die_on_first_checkpoint(block_start, loop):
            raise KeyboardInterrupt("simulated ctrl-c")

        with pytest.raises(KeyboardInterrupt):
            bedpost(
                phantom.dwi,
                phantom.gtab,
                phantom.mask,
                _bedpost_cfg(),
                store=store,
                checkpoint_every=10,
                on_checkpoint=die_on_first_checkpoint,
            )
        # The chain state survived the crash...
        ckpts = list((store.root / "checkpoints").rglob("block_*.npz"))
        assert len(ckpts) == 1
        assert SamplerCheckpoint.load(ckpts[0]).loop == 10

        # ...and the rerun resumes from it instead of restarting.
        registry = MetricsRegistry()
        with use_registry(registry):
            resumed = bedpost(
                phantom.dwi,
                phantom.gtab,
                phantom.mask,
                _bedpost_cfg(),
                store=store,
                checkpoint_every=10,
            )
        assert not resumed.served_from_store
        np.testing.assert_array_equal(baseline.samples, resumed.samples)
        np.testing.assert_allclose(
            baseline.acceptance_history, resumed.acceptance_history
        )
        # Replayed loop counters make the deterministic telemetry match
        # an uninterrupted run exactly.
        assert self._det(registry) == self._det(base_reg)
        # Publishing cleared the now-superseded checkpoints.
        assert not list((store.root / "checkpoints").rglob("block_*.npz"))

        # A third run is a pure store hit with the same bits.
        warm_reg = MetricsRegistry()
        with use_registry(warm_reg):
            warm = bedpost(
                phantom.dwi,
                phantom.gtab,
                phantom.mask,
                _bedpost_cfg(),
                store=store,
            )
        assert warm.served_from_store
        np.testing.assert_array_equal(baseline.samples, warm.samples)
        assert self._det(warm_reg) == self._det(base_reg)

    def test_corrupt_checkpoint_restarts_cleanly(self, phantom, tmp_path):
        from repro.pipeline import bedpost
        from repro.store import ArtifactStore

        baseline, _ = self._baseline(phantom)
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(KeyboardInterrupt):
            bedpost(
                phantom.dwi,
                phantom.gtab,
                phantom.mask,
                _bedpost_cfg(),
                store=store,
                checkpoint_every=10,
                on_checkpoint=lambda s, c: (_ for _ in ()).throw(
                    KeyboardInterrupt()
                ),
            )
        (ckpt,) = (store.root / "checkpoints").rglob("block_*.npz")
        blob = ckpt.read_bytes()
        ckpt.write_bytes(blob[: len(blob) // 2])

        resumed = bedpost(
            phantom.dwi,
            phantom.gtab,
            phantom.mask,
            _bedpost_cfg(),
            store=store,
            checkpoint_every=10,
        )
        np.testing.assert_array_equal(baseline.samples, resumed.samples)

    def test_workflow_threads_spec_cadence(self, phantom, tmp_path, monkeypatch):
        # Regression: run_workflow must pass runtime.checkpoint_every_loops
        # down to bedpost — with the fixture's 32-loop chain, a checkpoint
        # at loop 10 only exists if the spec's cadence (not the 250-loop
        # default) reached the sampler.
        from repro.config import RunSpec
        from repro.mcmc import SamplerCheckpoint
        from repro.pipeline import run_workflow

        spec = RunSpec.from_dict(
            {
                "sampling": CFG.to_spec_dict(),
                "tracking": {"max_steps": 32},
                "runtime": {"checkpoint_every_loops": 10},
                "telemetry": {"store": str(tmp_path / "store")},
            }
        )
        saved = []
        orig_save = SamplerCheckpoint.save

        def save_and_die(self, path):
            orig_save(self, path)
            saved.append(self.loop)
            raise KeyboardInterrupt("simulated ctrl-c")

        monkeypatch.setattr(SamplerCheckpoint, "save", save_and_die)
        with pytest.raises(KeyboardInterrupt):
            run_workflow(
                phantom, fit_mask=phantom.mask, seed_mask=phantom.mask, spec=spec
            )
        assert saved == [10]
        monkeypatch.undo()

        resumed = run_workflow(
            phantom, fit_mask=phantom.mask, seed_mask=phantom.mask, spec=spec
        )
        assert resumed.cache["sampling_hit"] is False
        baseline, _ = self._baseline(phantom)
        np.testing.assert_array_equal(baseline.samples, resumed.bedpost.samples)


def _die_after_save(block_start, loop):
    """Crash hook for TestShardedInterruptResume — module-level so it can
    cross the worker process boundary under any start method."""
    raise KeyboardInterrupt("simulated ctrl-c")


class TestShardedInterruptResume:
    """PR-8 regression: an interrupted *sharded* bedpost run resumes from
    its per-block checkpoints bit-identically — and the checkpoint files
    are interchangeable between the serial and sharded paths."""

    BLOCK_VOXELS = 200

    def _cfg(self, n_workers=2):
        from repro.pipeline import BedpostConfig

        return BedpostConfig(
            mcmc=CFG,
            block_voxels=self.BLOCK_VOXELS,
            n_workers=n_workers,
            max_retries=1,
        )

    def _det(self, registry):
        snap = registry.snapshot()
        return json.dumps(
            {"counters": snap["counters"], "histograms": snap["histograms"]},
            sort_keys=True,
        )

    def _run(self, phantom, cfg, **kwargs):
        from repro.pipeline import bedpost
        from repro.telemetry import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            result = bedpost(
                phantom.dwi, phantom.gtab, phantom.mask, cfg, **kwargs
            )
        return result, registry

    def test_sharded_interrupt_resumes_bit_identical(self, phantom, tmp_path):
        from repro.pipeline import bedpost
        from repro.store import ArtifactStore

        baseline, base_reg = self._run(phantom, self._cfg())
        store = ArtifactStore(tmp_path / "store")

        # Every worker-side checkpoint save is followed by a crash; the
        # supervisor's retries each advance one chunk through the saved
        # state until the escalation ladder reaches the in-parent serial
        # fallback, where the real KeyboardInterrupt finally propagates.
        with pytest.raises(KeyboardInterrupt):
            bedpost(
                phantom.dwi,
                phantom.gtab,
                phantom.mask,
                self._cfg(),
                store=store,
                checkpoint_every=10,
                on_checkpoint=_die_after_save,
            )
        ckpts = list((store.root / "checkpoints").rglob("block_*.npz"))
        assert ckpts, "workers checkpointed before dying"
        assert max(SamplerCheckpoint.load(p).loop for p in ckpts) >= 10

        resumed, reg = self._run(
            phantom, self._cfg(), store=store, checkpoint_every=10
        )
        assert not resumed.served_from_store
        np.testing.assert_array_equal(baseline.samples, resumed.samples)
        assert baseline.acceptance_history == resumed.acceptance_history
        assert self._det(reg) == self._det(base_reg)
        # Publishing cleared the now-superseded checkpoints.
        assert not list((store.root / "checkpoints").rglob("block_*.npz"))

    def test_serial_interrupt_resumes_sharded(self, phantom, tmp_path):
        from repro.pipeline import bedpost
        from repro.store import ArtifactStore

        baseline, base_reg = self._run(phantom, self._cfg(n_workers=1))
        store = ArtifactStore(tmp_path / "store")
        # Interrupt the *serial* path at its first checkpoint...
        with pytest.raises(KeyboardInterrupt):
            bedpost(
                phantom.dwi,
                phantom.gtab,
                phantom.mask,
                self._cfg(n_workers=1),
                store=store,
                checkpoint_every=10,
                on_checkpoint=_die_after_save,
            )
        assert list((store.root / "checkpoints").rglob("block_*.npz"))

        # ...and resume it *sharded*: the files are keyed by global voxel
        # start, so the worker pool picks up the serial run's state.
        resumed, reg = self._run(
            phantom, self._cfg(n_workers=2), store=store, checkpoint_every=10
        )
        np.testing.assert_array_equal(baseline.samples, resumed.samples)
        assert self._det(reg) == self._det(base_reg)
