"""Unit tests for the synthetic data substrate (repro.data)."""

import numpy as np
import pytest

from repro.data import (
    Bundle,
    add_gaussian_noise,
    add_rician_noise,
    arc_bundle,
    crossing_pair,
    dataset1,
    dataset2,
    fanning_bundle,
    helix_bundle,
    make_gradient_table,
    rasterize_bundles,
    straight_bundle,
    synthesize_dwi,
)
from repro.data.noise import sigma_for_snr
from repro.data.phantoms import ellipsoid_mask
from repro.errors import ConfigurationError, DataError


class TestBundles:
    def test_straight_geometry(self):
        b = straight_bundle([0, 0, 0], [10, 0, 0], radius=2.0)
        assert b.length == pytest.approx(10.0)
        np.testing.assert_allclose(b.tangents, [[1, 0, 0]] * len(b.points))

    def test_arc_span_and_radius(self):
        b = arc_bundle(
            center=[20, 20, 20], radius_of_curvature=10.0, plane="xz", n_points=100
        )
        r = np.linalg.norm(b.points[:, [0, 2]] - [20, 20], axis=1)
        np.testing.assert_allclose(r, 10.0, atol=1e-12)
        np.testing.assert_allclose(b.points[:, 1], 20.0)
        assert b.length == pytest.approx(np.pi * 10.0, rel=1e-3)

    def test_arc_rejects_bad_plane(self):
        with pytest.raises(DataError):
            arc_bundle([0, 0, 0], 5.0, plane="zz")

    def test_helix_pitch(self):
        b = helix_bundle([0, 0, 0], 5.0, pitch=4.0, turns=2.0)
        assert b.points[-1, 2] == pytest.approx(8.0)

    def test_crossing_pair_angle(self):
        b1, b2 = crossing_pair([0, 0, 0], 10.0, angle=np.pi / 3)
        t1, t2 = b1.tangents[0], b2.tangents[0]
        assert np.dot(t1, t2) == pytest.approx(np.cos(np.pi / 3), abs=1e-9)

    def test_fanning_branches_spread(self):
        fans = fanning_bundle([0, 0, 0], [1, 0, 0], length=20.0, n_branches=3)
        assert len(fans) == 3
        tips = np.array([f.points[-1] for f in fans])
        assert np.ptp(tips[:, 1]) > 1.0  # branches separate in y

    def test_fanning_radius_tapers(self):
        (fan,) = fanning_bundle([0, 0, 0], [1, 0, 0], length=10.0, n_branches=1)
        assert fan.radius[-1] < fan.radius[0]

    def test_resample_preserves_endpoints_and_length(self):
        b = straight_bundle([0, 0, 0], [10, 0, 0], n_points=5)
        r = b.resample(0.5)
        np.testing.assert_allclose(r.points[0], [0, 0, 0])
        np.testing.assert_allclose(r.points[-1], [10, 0, 0])
        assert r.length == pytest.approx(b.length, rel=1e-6)
        assert len(r.points) >= 20

    def test_resample_rejects_bad_spacing(self):
        b = straight_bundle([0, 0, 0], [1, 0, 0])
        with pytest.raises(DataError):
            b.resample(0.0)

    def test_bundle_validation(self):
        with pytest.raises(DataError):
            Bundle(points=np.zeros((1, 3)), radius=1.0)
        with pytest.raises(DataError):
            Bundle(points=np.zeros((3, 2)), radius=1.0)
        with pytest.raises(DataError):
            Bundle(points=np.zeros((3, 3)), radius=-1.0)
        with pytest.raises(DataError):
            Bundle(points=np.zeros((3, 3)), radius=1.0, weight=0.0)


class TestNoise:
    def test_sigma_for_snr(self):
        assert sigma_for_snr(1000.0, 20.0) == 50.0
        with pytest.raises(ConfigurationError):
            sigma_for_snr(1000.0, 0.0)
        with pytest.raises(ConfigurationError):
            sigma_for_snr(-1.0, 10.0)

    def test_gaussian_statistics(self):
        rng = np.random.default_rng(0)
        sig = np.full(200_000, 100.0)
        noisy = add_gaussian_noise(sig, 5.0, rng)
        assert noisy.mean() == pytest.approx(100.0, abs=0.1)
        assert noisy.std() == pytest.approx(5.0, abs=0.1)

    def test_rician_nonnegative_and_biased_up_at_low_snr(self):
        rng = np.random.default_rng(1)
        sig = np.zeros(100_000)
        noisy = add_rician_noise(sig, 5.0, rng)
        assert np.all(noisy >= 0)
        # Rayleigh mean = sigma * sqrt(pi/2).
        assert noisy.mean() == pytest.approx(5.0 * np.sqrt(np.pi / 2), rel=0.02)

    def test_rician_approaches_gaussian_at_high_snr(self):
        rng = np.random.default_rng(2)
        sig = np.full(100_000, 1000.0)
        noisy = add_rician_noise(sig, 10.0, rng)
        assert noisy.mean() == pytest.approx(1000.05, abs=0.3)
        assert noisy.std() == pytest.approx(10.0, rel=0.03)

    def test_zero_sigma_copies(self):
        rng = np.random.default_rng(3)
        sig = np.arange(5.0)
        out = add_rician_noise(sig, 0.0, rng)
        np.testing.assert_array_equal(out, sig)
        assert out is not sig

    def test_negative_sigma_rejected(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ConfigurationError):
            add_gaussian_noise(np.ones(3), -1.0, rng)
        with pytest.raises(ConfigurationError):
            add_rician_noise(np.ones(3), -1.0, rng)


class TestGradientSchemes:
    def test_structure(self):
        t = make_gradient_table(n_directions=20, bvalue=1200.0, n_b0=3)
        assert len(t) == 23
        assert t.n_b0 == 3
        np.testing.assert_allclose(t.bvals[3:], 1200.0)

    def test_jitter_changes_dirs_but_keeps_unit(self):
        a = make_gradient_table(n_directions=12, jitter=0.0)
        b = make_gradient_table(n_directions=12, jitter=0.05, seed=5)
        assert not np.allclose(a.bvecs[4:], b.bvecs[4:])
        np.testing.assert_allclose(np.linalg.norm(b.bvecs[4:], axis=1), 1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_gradient_table(n_directions=0)
        with pytest.raises(ConfigurationError):
            make_gradient_table(bvalue=-1.0)
        with pytest.raises(ConfigurationError):
            make_gradient_table(n_b0=-1)


class TestRasterization:
    def test_straight_bundle_paints_its_axis(self):
        shape = (20, 10, 10)
        b = straight_bundle([2, 5, 5], [17, 5, 5], radius=1.5, weight=0.6)
        field = rasterize_bundles(shape, [b], mask=np.ones(shape, bool))
        center = field.f[10, 5, 5]
        assert center[0] == pytest.approx(0.6)
        assert abs(field.directions[10, 5, 5, 0] @ [1, 0, 0]) > 0.99

    def test_crossing_gives_two_populations(self):
        shape = (24, 24, 8)
        b1, b2 = crossing_pair([12, 12, 4], 10.0, angle=np.pi / 2, radius=1.5)
        field = rasterize_bundles(shape, [b1, b2], mask=np.ones(shape, bool))
        fx = field.f[12, 12, 4]
        assert fx[0] > 0 and fx[1] > 0
        d0, d1 = field.directions[12, 12, 4]
        assert abs(np.dot(d0, d1)) < 0.3  # nearly orthogonal populations

    def test_parallel_bundles_merge(self):
        shape = (20, 10, 10)
        a = straight_bundle([2, 5, 5], [17, 5, 5], radius=1.5, weight=0.5)
        b = straight_bundle([2, 5, 5], [17, 5, 5], radius=1.5, weight=0.5)
        field = rasterize_bundles(shape, [a, b], mask=np.ones(shape, bool))
        fx = field.f[10, 5, 5]
        assert fx[0] > 0 and fx[1] == 0.0  # merged, not split

    def test_fraction_ordering_and_cap(self):
        shape = (24, 24, 8)
        b1, b2 = crossing_pair([12, 12, 4], 10.0, radius=2.0, weight=0.6)
        field = rasterize_bundles(shape, [b1, b2], mask=np.ones(shape, bool))
        assert np.all(field.f[..., 0] >= field.f[..., 1])
        assert field.f.sum(axis=-1).max() <= 0.9 + 1e-9

    def test_mask_respected(self):
        shape = (20, 10, 10)
        mask = np.zeros(shape, bool)
        mask[:10] = True
        b = straight_bundle([2, 5, 5], [17, 5, 5], radius=1.5)
        field = rasterize_bundles(shape, [b], mask=mask)
        assert field.f[12, 5, 5, 0] == 0.0
        assert field.f[8, 5, 5, 0] > 0.0

    def test_directions_unit_where_painted(self):
        shape = (20, 10, 10)
        b = straight_bundle([2, 5, 5], [17, 5, 5], radius=2.0)
        field = rasterize_bundles(shape, [b], mask=np.ones(shape, bool))
        painted = field.f[..., 0] > 0
        norms = np.linalg.norm(field.directions[..., 0, :][painted], axis=-1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_arc_tangents_follow_curve(self):
        shape = (8, 40, 40)
        arc = arc_bundle(
            center=[4, 20, 10], radius_of_curvature=10.0, plane="yz", tube_radius=1.5
        )
        field = rasterize_bundles(shape, [arc], mask=np.ones(shape, bool))
        # At the apex of the arch (top), the tangent should be ~ +/-y.
        apex = field.directions[4, 20, 20, 0]
        assert abs(apex[1]) > 0.9

    def test_validation(self):
        with pytest.raises(DataError):
            rasterize_bundles((10, 10, 10), [])
        b = straight_bundle([0, 0, 0], [5, 0, 0])
        with pytest.raises(DataError):
            rasterize_bundles((10, 10), [b])  # type: ignore[arg-type]
        with pytest.raises(DataError):
            rasterize_bundles((10, 10, 10), [b], mask=np.ones((5, 5, 5), bool))


class TestSynthesize:
    def make_field(self):
        shape = (12, 12, 6)
        b = straight_bundle([1, 6, 3], [10, 6, 3], radius=1.5, weight=0.6)
        return rasterize_bundles(shape, [b], mask=np.ones(shape, bool))

    def test_noiseless_signal_values(self):
        field = self.make_field()
        gtab = make_gradient_table(n_directions=16, n_b0=2)
        vol = synthesize_dwi(field, gtab, s0=500.0, snr=np.inf, noise="none")
        assert vol.data.shape == (12, 12, 6, 18)
        # b0 inside mask equals s0.
        np.testing.assert_allclose(vol.data[6, 6, 3, :2], 500.0)

    def test_anisotropy_in_fiber_voxel(self):
        field = self.make_field()
        gtab = make_gradient_table(n_directions=32, n_b0=2)
        vol = synthesize_dwi(field, gtab, snr=np.inf, noise="none")
        dwi = vol.data[6, 6, 3, 2:]
        align = np.abs(gtab.bvecs[2:] @ [1.0, 0.0, 0.0])
        # Least attenuation perpendicular to the fiber.
        assert dwi[np.argmin(align)] > dwi[np.argmax(align)]

    def test_noise_is_reproducible(self):
        field = self.make_field()
        gtab = make_gradient_table(n_directions=8, n_b0=1)
        a = synthesize_dwi(field, gtab, seed=3)
        b = synthesize_dwi(field, gtab, seed=3)
        c = synthesize_dwi(field, gtab, seed=4)
        np.testing.assert_array_equal(a.data, b.data)
        assert not np.array_equal(a.data, c.data)

    def test_bad_noise_model_rejected(self):
        field = self.make_field()
        gtab = make_gradient_table(n_directions=8)
        with pytest.raises(ConfigurationError):
            synthesize_dwi(field, gtab, noise="poisson")

    def test_voxel_sizes_in_volume(self):
        field = self.make_field()
        gtab = make_gradient_table(n_directions=8)
        vol = synthesize_dwi(field, gtab, voxel_sizes=(2.5, 2.5, 2.5))
        np.testing.assert_allclose(vol.voxel_sizes, 2.5)


class TestDatasets:
    def test_dataset1_scaled_geometry(self):
        ph = dataset1(scale=0.2)
        assert ph.name == "dataset1"
        nx, ny, nz = ph.dwi.shape3
        assert (nx, ny, nz) == (10, 19, 19)
        assert ph.n_valid > 0
        assert ph.wm_mask.sum() > 0
        assert ph.wm_mask.sum() < ph.n_valid

    def test_dataset2_has_more_voxels(self):
        p1 = dataset1(scale=0.2)
        p2 = dataset2(scale=0.2)
        assert p2.dwi.data[..., 0].size > p1.dwi.data[..., 0].size

    def test_ellipsoid_mask_shape_and_interior(self):
        m = ellipsoid_mask((10, 20, 20))
        assert m.shape == (10, 20, 20)
        assert m[5, 10, 10]
        assert not m[0, 0, 0]

    def test_contains_crossing_region(self):
        ph = dataset1(scale=0.25)
        two_pop = (ph.truth.f[..., 1] > 0).sum()
        assert two_pop > 0

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            dataset1(scale=-1.0)

    def test_spec_override(self):
        ph = dataset1(scale=0.2, snr=10.0, n_directions=16)
        assert len(ph.gtab) == 20
