"""Unit tests for the visit-map convergence diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    ConvergenceReport,
    bhattacharyya_coefficient,
    convergence_report,
    visit_map_correlation,
)
from repro.errors import DataError


def _ramp(shape=(4, 4, 4)):
    return np.arange(np.prod(shape), dtype=np.float64).reshape(shape)


class TestVisitMapCorrelation:
    def test_identical_maps_correlate_perfectly(self):
        m = _ramp()
        assert visit_map_correlation(m, m) == pytest.approx(1.0)

    def test_scaled_map_still_correlates_perfectly(self):
        m = _ramp()
        assert visit_map_correlation(m, 3.0 * m) == pytest.approx(1.0)

    def test_anticorrelated_maps(self):
        m = _ramp()
        assert visit_map_correlation(m, -m) == pytest.approx(-1.0)

    def test_constant_maps(self):
        c = np.full((3, 3, 3), 2.0)
        assert visit_map_correlation(c, c) == 1.0
        assert visit_map_correlation(c, c + 1) == 0.0
        assert visit_map_correlation(c, _ramp((3, 3, 3))) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(DataError):
            visit_map_correlation(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_empty_raises(self):
        with pytest.raises(DataError):
            visit_map_correlation(np.zeros(0), np.zeros(0))


class TestBhattacharyya:
    def test_identical_distributions(self):
        m = _ramp() + 1.0
        assert bhattacharyya_coefficient(m, m) == pytest.approx(1.0)

    def test_scale_invariant(self):
        m = _ramp() + 1.0
        assert bhattacharyya_coefficient(m, 7.0 * m) == pytest.approx(1.0)

    def test_disjoint_support_is_zero(self):
        a = np.array([1.0, 1.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 1.0, 1.0])
        assert bhattacharyya_coefficient(a, b) == 0.0

    def test_partial_overlap_between_zero_and_one(self):
        a = np.array([1.0, 1.0, 0.0])
        b = np.array([0.0, 1.0, 1.0])
        bc = bhattacharyya_coefficient(a, b)
        assert 0.0 < bc < 1.0

    def test_empty_maps(self):
        z = np.zeros((2, 2))
        assert bhattacharyya_coefficient(z, z) == 1.0
        assert bhattacharyya_coefficient(z, np.ones((2, 2))) == 0.0

    def test_negative_values_raise(self):
        with pytest.raises(DataError):
            bhattacharyya_coefficient(np.array([-1.0, 1.0]), np.ones(2))

    def test_cauchy_schwarz_bound(self):
        rng = np.random.default_rng(0)
        a = rng.random((5, 5, 5))
        b = rng.random((5, 5, 5))
        assert 0.0 <= bhattacharyya_coefficient(a, b) <= 1.0 + 1e-12


class TestConvergenceReport:
    def test_identical_runs_converge(self):
        m = _ramp()
        rep = convergence_report(m, m)
        assert isinstance(rep, ConvergenceReport)
        assert rep.correlation == pytest.approx(1.0)
        assert rep.bhattacharyya == pytest.approx(1.0)
        assert rep.dice == pytest.approx(1.0)
        assert rep.n_support_a == rep.n_support_b == m.size - 1
        assert rep.converged()
        assert rep.manifest is None

    def test_disjoint_runs_do_not_converge(self):
        a = np.zeros((4, 4, 4))
        b = np.zeros((4, 4, 4))
        a[:2] = 1.0
        b[2:] = 1.0
        rep = convergence_report(a, b)
        assert rep.bhattacharyya == 0.0
        assert rep.dice == 0.0
        assert not rep.converged()

    def test_threshold_shrinks_support(self):
        m = _ramp()
        rep = convergence_report(m, m, threshold=m.max() / 2)
        assert rep.n_support_a < m.size
        assert rep.dice == pytest.approx(1.0)

    def test_summary_lines(self):
        rep = convergence_report(_ramp(), _ramp())
        text = rep.summary()
        assert "correlation" in text
        assert "bhattacharyya" in text
        assert "manifests" not in text

    def test_manifest_diff_folded_in(self):
        from repro.telemetry import MetricsRegistry, build_manifest

        reg = MetricsRegistry()
        reg.counter("tracking.steps").value = 5
        doc = build_manifest(reg)
        rep = convergence_report(
            _ramp(), _ramp(), manifest_a=doc, manifest_b=doc
        )
        assert rep.manifest is not None
        assert rep.manifest.identical
        assert "manifests       identical" in rep.summary()
