"""Unit tests for the shard supervisor: policy, taxonomy, escalation.

Everything here runs through :class:`InlineLauncher` — scripted outcomes
on a fake clock — so the retry/backoff/fallback state machine is tested
without spawning a single real process.
"""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    FAILURE_KINDS,
    PoolExhaustedError,
    ShardCrashError,
    ShardError,
    ShardResultError,
    ShardTimeoutError,
    classify_shard_failure,
)
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.supervisor import (
    InlineLauncher,
    RetryPolicy,
    ShardRunner,
    ShardSupervisor,
    classify_outcome,
)

pytestmark = pytest.mark.chaos


def run_tasks(tasks, script=None, *, policy=None, fallback=True, plan=None,
              split=None, samples=None, validate=None, corrupt=None,
              max_workers=2):
    launcher = InlineLauncher(script or {})
    sup = ShardSupervisor(
        policy=policy or RetryPolicy(max_retries=2, base_delay_s=0.0),
        fallback_to_serial=fallback,
        fault_plan=plan,
        max_workers=max_workers,
        launcher=launcher,
    )
    runner = ShardRunner(
        run=lambda task: ("payload", task),
        validate=validate,
        split=split,
        corrupt=corrupt,
        samples=samples,
    )
    outputs, report = sup.run_tasks(tasks, runner)
    return outputs, report, launcher


class TestRetryPolicy:
    def test_schedule_is_deterministic_from_seed(self):
        a = RetryPolicy(max_retries=5, seed=42)
        b = RetryPolicy(max_retries=5, seed=42)
        for shard in range(4):
            assert a.schedule(shard) == b.schedule(shard)

    def test_different_seeds_and_shards_give_different_jitter(self):
        a = RetryPolicy(max_retries=4, seed=1)
        b = RetryPolicy(max_retries=4, seed=2)
        assert a.schedule(0) != b.schedule(0)
        assert a.schedule(0) != a.schedule(1)

    def test_cap_respected(self):
        p = RetryPolicy(max_retries=20, base_delay_s=0.1, max_delay_s=0.75)
        for attempt in range(1, 21):
            assert 0.0 <= p.delay(3, attempt) <= 0.75

    def test_exponential_growth_before_cap(self):
        p = RetryPolicy(max_retries=4, base_delay_s=0.1, max_delay_s=100.0,
                        jitter=0.0)
        sched = p.schedule(0)
        assert sched == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay(0, 0)


class TestErrorTaxonomy:
    def test_failure_kinds_map_to_shard_error_subclasses(self):
        assert FAILURE_KINDS["crash"] is ShardCrashError
        assert FAILURE_KINDS["timeout"] is ShardTimeoutError
        assert FAILURE_KINDS["corrupt"] is ShardResultError
        for cls in FAILURE_KINDS.values():
            assert issubclass(cls, ShardError)

    def test_classify_shard_failure(self):
        assert classify_shard_failure(ShardTimeoutError("x")) == "timeout"
        assert classify_shard_failure(ShardResultError("x")) == "corrupt"
        assert classify_shard_failure(ShardCrashError("x")) == "crash"
        assert classify_shard_failure(ValueError("boom")) == "crash"

    def test_classify_outcome_builds_taxonomy_errors(self):
        err = classify_outcome("timeout", shard=3, attempt=1, message="slow")
        assert isinstance(err, ShardTimeoutError)
        assert (err.shard, err.attempt) == (3, 1)
        assert isinstance(classify_outcome("corrupt", 0, 0), ShardResultError)
        assert isinstance(classify_outcome("crash", 0, 0), ShardCrashError)

    def test_shard_errors_are_catchable_as_repro_errors(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            raise ShardTimeoutError("deadline", shard=1, attempt=2)


class TestSupervisorStateMachine:
    def test_clean_run_single_attempt_each(self):
        outputs, report, launcher = run_tasks(["a", "b", "c"])
        assert outputs == [[("payload", "a")], [("payload", "b")],
                           [("payload", "c")]]
        assert report.n_failures == 0
        assert report.n_retries == 0
        assert not report.fallbacks and not report.reshards
        assert sorted(launcher.launches) == [(0, 0, "ok"), (1, 0, "ok"),
                                             (2, 0, "ok")]

    def test_transient_failure_is_retried_and_recovers(self):
        outputs, report, _ = run_tasks(
            ["a", "b"], {(0, 0): "crash"})
        assert outputs[0] == [("payload", "a")]
        assert report.n_failures == 1
        assert report.n_retries == 1
        assert report.failure_counts() == {"crash": 1}
        assert not report.fallbacks

    def test_backoff_schedule_followed_deterministically(self):
        policy = RetryPolicy(max_retries=2, base_delay_s=0.25, seed=9)
        _, report, launcher = run_tasks(
            ["a"], {(0, 0): "timeout", (0, 1): "timeout"}, policy=policy)
        waited = [a.backoff_s for a in report.attempts if a.backoff_s > 0]
        assert waited == policy.schedule(0)[: len(waited)]
        # The fake clock actually slept those delays (in order).
        assert launcher.slept == pytest.approx(waited)

    def test_exhaustion_triggers_serial_fallback(self):
        script = {(0, a): "crash" for a in range(3)}
        outputs, report, _ = run_tasks(["a", "b"], script)
        assert outputs[0] == [("payload", "a")]  # recovered in-parent
        assert outputs[1] == [("payload", "b")]
        assert report.fallbacks == [0]
        assert report.n_failures == 3
        serial = [a for a in report.attempts if a.via == "serial"]
        assert len(serial) == 1 and serial[0].outcome == "ok"

    def test_exhaustion_without_fallback_raises_pool_exhausted(self):
        script = {(0, a): "timeout" for a in range(3)}
        with pytest.raises(PoolExhaustedError) as err:
            run_tasks(["a"], script, fallback=False)
        assert err.value.shard == 0

    def test_reshard_splits_before_serial_fallback(self):
        # Task "ab" covers samples 0-1; every pooled attempt of the
        # original shard fails, then the re-shard stage gets one attempt
        # per single-sample subtask (attempt index 3) which succeeds.
        script = {(0, 0): "crash", (0, 1): "crash", (0, 2): "crash"}
        outputs, report, _ = run_tasks(
            ["ab"],
            script,
            split=lambda t: [t[0], t[1]],
            samples=lambda t: range(len(t)),
        )
        assert report.reshards == [0]
        assert not report.fallbacks
        assert outputs[0] == [("payload", "a"), ("payload", "b")]

    def test_corrupt_result_detected_by_validation(self):
        def validate(task, payload):
            if payload[1].endswith("!"):
                raise ShardResultError("mangled")

        outputs, report, _ = run_tasks(
            ["a"], {(0, 0): "corrupt"},
            validate=validate, corrupt=lambda p: (p[0], p[1] + "!"))
        assert report.failure_counts() == {"corrupt": 1}
        assert outputs[0] == [("payload", "a")]

    def test_fault_plan_drives_inline_outcomes(self):
        plan = FaultPlan(faults=(FaultSpec(kind="crash", shard=1),))
        outputs, report, _ = run_tasks(["a", "b"], plan=plan)
        failed = report.failed_attempts()
        assert [a.shard for a in failed] == [1]
        assert outputs[1] == [("payload", "b")]

    def test_outputs_in_task_order_not_completion_order(self):
        # Shard 0 needs two retries; shard 1 completes immediately —
        # outputs must still line up with task order.
        script = {(0, 0): "crash", (0, 1): "crash"}
        outputs, _, _ = run_tasks(["a", "b"], script)
        assert outputs == [[("payload", "a")], [("payload", "b")]]

    def test_requires_launcher(self):
        with pytest.raises(ConfigurationError):
            ShardSupervisor().run_tasks(["a"], ShardRunner(run=lambda t: t))

    def test_invalid_supervisor_config(self):
        with pytest.raises(ConfigurationError):
            ShardSupervisor(shard_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ShardSupervisor(max_workers=0)


class TestSupervisorReport:
    def test_summary_mentions_kind_counts(self):
        script = {(0, 0): "crash", (1, 0): "timeout"}
        _, report, _ = run_tasks(["a", "b"], script)
        text = report.summary()
        assert "1 crash" in text and "1 timeout" in text
        assert "2 retries" in text

    def test_clean_summary(self):
        _, report, _ = run_tasks(["a"])
        assert "no failures" in report.summary()


class TestFaultPlanParsing:
    def test_parse_shard_sample_and_attempt_forms(self):
        plan = FaultPlan.parse("crash:0,hang:1:*,corrupt:s3:2")
        crash, hang, corrupt = plan.faults
        assert (crash.kind, crash.shard, crash.attempt) == ("crash", 0, 0)
        assert (hang.kind, hang.shard, hang.attempt) == ("hang", 1, -1)
        assert (corrupt.kind, corrupt.sample, corrupt.attempt) == ("corrupt", 3, 2)

    def test_lookup_semantics(self):
        plan = FaultPlan.parse("crash:0,hang:1:*,corrupt:s3")
        assert plan.lookup(0, range(0, 2), 0).kind == "crash"
        assert plan.lookup(0, range(0, 2), 1) is None      # attempt 0 only
        assert plan.lookup(1, range(2, 4), 5).kind == "hang"  # every attempt
        assert plan.lookup(2, range(2, 4), 0).kind == "corrupt"  # sample 3
        assert plan.lookup(2, range(4, 6), 0) is None

    def test_parse_rejects_garbage(self):
        for bad in ("", "explode:0", "crash", "crash:x", "crash:0:y"):
            with pytest.raises(ConfigurationError):
                FaultPlan.parse(bad)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash")  # no target
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", shard=0, sample=1)  # two targets
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", shard=-2)

    def test_rng_jitter_inputs_are_valid(self):
        # default_rng must accept the [seed, shard, attempt] triple.
        v = float(np.random.default_rng([0, 0, 1]).random())
        assert 0.0 <= v < 1.0
