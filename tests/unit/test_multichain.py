"""Tests for the multi-chain driver (repro.mcmc.multichain)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.io import GradientTable
from repro.mcmc import MCMCConfig, run_chains
from repro.models import LogPosterior, MultiFiberModel
from repro.utils.geometry import fibonacci_sphere


@pytest.fixture(scope="module")
def posterior():
    bvals = np.concatenate([np.zeros(2), np.full(20, 1000.0)])
    bvecs = np.concatenate([np.zeros((2, 3)), fibonacci_sphere(20)])
    gtab = GradientTable(bvals, bvecs)
    rng = np.random.default_rng(0)
    mu = MultiFiberModel(2).predict(
        gtab,
        s0=np.full(3, 500.0),
        d=np.full(3, 1e-3),
        f=np.tile([0.55, 0.0], (3, 1)),
        theta=np.tile([np.pi / 2, 1.0], (3, 1)),
        phi=np.tile([0.0, 1.0], (3, 1)),
    )
    return LogPosterior(gtab, mu + rng.normal(scale=10.0, size=mu.shape))


class TestRunChains:
    def test_structure_and_convergence(self, posterior):
        # Chains need length to mix through the (s0, d, f) correlations;
        # with thinning 5 the label-invariant statistics converge.
        res = run_chains(
            posterior,
            MCMCConfig(n_burnin=500, n_samples=120, sample_interval=5),
            n_chains=3,
        )
        assert res.n_chains == 3
        assert res.pooled_samples.shape == (360, 3, 9)
        assert set(res.rhat) == {"f_total", "d", "sigma"}
        for values in res.rhat.values():
            assert values.shape == (3,)
            assert np.all(values > 0.8)
        conv = res.converged(threshold=1.2)
        assert conv.shape == (3,)
        assert conv.mean() >= 2 / 3

    def test_chains_differ(self, posterior):
        res = run_chains(
            posterior,
            MCMCConfig(n_burnin=30, n_samples=5, sample_interval=1),
            n_chains=2,
        )
        assert not np.array_equal(res.chains[0].samples, res.chains[1].samples)

    def test_validation(self, posterior):
        with pytest.raises(ConfigurationError):
            run_chains(posterior, MCMCConfig(n_burnin=5, n_samples=2), n_chains=1)

    def test_converged_requires_rhat(self, posterior):
        from repro.mcmc import MultiChainResult

        res = MultiChainResult(chains=[])
        with pytest.raises(ConfigurationError):
            res.converged()
