"""The array-backend seam: registry behavior and op-level parity.

The lockstep inner loop is written against
:class:`repro.backends.ArrayBackend`; the contract is that every backend
produces **bitwise-identical** float64 results for the op set the kernel
uses, so engine output cannot depend on ``runtime.array_backend``.
"""

import importlib.util

import numpy as np
import pytest

from repro.backends import (
    ARRAY_API_BACKEND,
    NUMPY_BACKEND,
    ArrayApiBackend,
    get_array_backend,
)
from repro.backends.base import ARRAY_BACKENDS
from repro.errors import ConfigurationError

HAVE_CUPY = importlib.util.find_spec("cupy") is not None


class TestRegistry:
    def test_none_and_numpy_resolve_to_the_numpy_singleton(self):
        assert get_array_backend(None) is NUMPY_BACKEND
        assert get_array_backend("numpy") is NUMPY_BACKEND

    def test_array_api_resolves_to_the_adapter_singleton(self):
        assert get_array_backend("array-api") is ARRAY_API_BACKEND
        assert isinstance(ARRAY_API_BACKEND, ArrayApiBackend)

    def test_unknown_name_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="array_backend"):
            get_array_backend("torch")

    @pytest.mark.skipif(HAVE_CUPY, reason="CuPy installed here")
    def test_missing_cupy_is_a_configuration_error_not_an_import_error(self):
        with pytest.raises(ConfigurationError, match="[Cc]u[Pp]y"):
            get_array_backend("cupy")

    def test_registry_names_cover_the_spec_enum(self):
        assert set(ARRAY_BACKENDS) == {"numpy", "array-api", "cupy"}


@pytest.fixture(params=["array-api"])
def other(request):
    """Every non-numpy backend importable in this environment."""
    return get_array_backend(request.param)


class TestOpParity:
    """Each hot-path op: bitwise equal to the numpy backend."""

    def setup_method(self):
        self.rng = np.random.default_rng(42)

    def both(self, other, op):
        a = op(NUMPY_BACKEND)
        b = other.to_numpy(op(other))
        assert a.dtype == b.dtype, op
        assert np.array_equal(a, b, equal_nan=True), op
        return a

    def test_rint_half_even_ties(self, other):
        pts = np.array([0.5, 1.5, 2.5, -0.5, -1.5, 3.49999999, 2.0])
        self.both(other, lambda xb: xb.to_numpy(xb.rint(xb.asarray(pts))))

    def test_floor_abs_sign_sqrt_clip(self, other):
        x = self.rng.normal(scale=3.0, size=257)
        for name in ("floor", "abs", "sign"):
            self.both(
                other,
                lambda xb, n=name: xb.to_numpy(getattr(xb, n)(xb.asarray(x))),
            )
        self.both(
            other, lambda xb: xb.to_numpy(xb.sqrt(xb.asarray(np.abs(x))))
        )
        self.both(
            other, lambda xb: xb.to_numpy(xb.clip(xb.asarray(x), -1.0, 1.0))
        )

    def test_norm_matches_linalg(self, other):
        v = self.rng.normal(size=(64, 3))
        got = self.both(
            other, lambda xb: xb.to_numpy(xb.norm(xb.asarray(v), axis=1))
        )
        assert np.array_equal(got, np.linalg.norm(v, axis=1))

    def test_take_rows_gather(self, other):
        table = self.rng.normal(size=(100, 4))
        idx = self.rng.integers(0, 100, size=37)
        self.both(
            other,
            lambda xb: xb.to_numpy(
                xb.take(xb.asarray(table), xb.asarray(idx), axis=0)
            ),
        )

    def test_divide_with_where_mask(self, other):
        a = self.rng.normal(size=50)
        b = self.rng.normal(size=50)
        b[::7] = 0.0
        ok = b != 0.0

        def op(xb):
            out = xb.zeros((50,), dtype=np.float64)
            return xb.to_numpy(
                xb.divide(
                    xb.asarray(a), xb.asarray(b), out=out, where=xb.asarray(ok)
                )
            )

        got = self.both(other, op)
        assert np.array_equal(got[~ok], np.zeros((~ok).sum()))

    def test_copyto_where(self, other):
        mask = self.rng.random(40) < 0.3
        base = self.rng.normal(size=40)

        def op(xb):
            dst = xb.asarray(base.copy())
            return xb.to_numpy(xb.copyto(dst, 7.5, where=xb.asarray(mask)))

        got = self.both(other, op)
        assert np.all(got[mask] == 7.5)
        assert np.array_equal(got[~mask], base[~mask])

    def test_argsort_is_stable(self, other):
        keys = np.array([3, 1, 3, 1, 2, 2, 1, 3] * 10)
        got = self.both(
            other, lambda xb: xb.to_numpy(xb.argsort(xb.asarray(keys)))
        )
        assert np.array_equal(got, np.argsort(keys, kind="stable"))

    def test_flatnonzero_argmax_count_nonzero(self, other):
        m = self.rng.random(200) < 0.4
        self.both(
            other, lambda xb: xb.to_numpy(xb.flatnonzero(xb.asarray(m)))
        )
        x = self.rng.normal(size=(31, 5))
        self.both(
            other,
            lambda xb: xb.to_numpy(xb.argmax(xb.asarray(x), axis=1)),
        )
        n_np = NUMPY_BACKEND.count_nonzero(m)
        assert int(other.count_nonzero(other.asarray(m))) == int(n_np)

    def test_concatenate_and_where(self, other):
        a = self.rng.normal(size=(10, 3))
        b = self.rng.normal(size=(4, 3))
        self.both(
            other,
            lambda xb: xb.to_numpy(
                xb.concatenate([xb.asarray(a), xb.asarray(b)], axis=0)
            ),
        )
        c = self.rng.random(10) < 0.5
        self.both(
            other,
            lambda xb: xb.to_numpy(
                xb.where(
                    xb.asarray(c), xb.asarray(a[:, 0]), xb.asarray(a[:, 1])
                )
            ),
        )

    def test_rows_cache_returns_arange(self, other):
        got = other.to_numpy(other.rows(17))
        assert np.array_equal(got, np.arange(17))
        # Cached: repeated calls slice one shared arange, no realloc.
        assert np.shares_memory(NUMPY_BACKEND.rows(17), NUMPY_BACKEND.rows(9))


class TestLookupParity:
    """Full interpolation kernels: array-api bitwise equals numpy."""

    def _field(self):
        from repro.models.fields import FiberField

        rng = np.random.default_rng(3)
        shape = (6, 7, 5)
        f = rng.uniform(0.05, 0.45, size=shape + (2,))
        d = rng.normal(size=shape + (2, 3))
        d /= np.linalg.norm(d, axis=-1, keepdims=True)
        return FiberField(f=f, directions=d, mask=np.ones(shape, bool))

    def test_trilinear_and_nearest_bitwise(self, other):
        from repro.tracking.interpolate import (
            nearest_lookup,
            trilinear_lookup,
        )

        field = self._field()
        rng = np.random.default_rng(11)
        pts = rng.uniform(0.0, 4.5, size=(40, 3))
        for lookup in (trilinear_lookup, nearest_lookup):
            f_np, d_np = lookup(field, pts)
            f_xp, d_xp = lookup(field, other.asarray(pts), xb=other)
            assert np.array_equal(f_np, other.to_numpy(f_xp)), lookup
            assert np.array_equal(d_np, other.to_numpy(d_xp)), lookup
