"""Tests tying the presets to their published-measurement derivation."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.calibration import PAPER, PaperMeasurements, derive_constants
from repro.gpu.presets import PHENOM_X4, RADEON_5870


class TestDerivation:
    def test_presets_match_derivation_within_factor_two(self):
        """The hand-calibrated presets must agree with the executable
        derivation to within a factor of ~2 on every constant (the
        derivations involve judgement factors like the waste fraction,
        so exact equality is not expected — but an order-of-magnitude
        drift would mean the presets lost their provenance)."""
        d = derive_constants()
        pairs = [
            (d.seconds_per_wavefront_iteration,
             RADEON_5870.seconds_per_wavefront_iteration),
            (d.host_seconds_per_iteration, PHENOM_X4.seconds_per_iteration),
            (d.transfer_latency_s, RADEON_5870.transfer_latency_s),
            (d.reduction_seconds_per_item,
             PHENOM_X4.reduction_seconds_per_item),
            (d.reduction_base_s, PHENOM_X4.reduction_base_s),
            (d.seconds_per_wavefront_mcmc_update,
             RADEON_5870.seconds_per_wavefront_mcmc_update),
            (d.host_seconds_per_mcmc_update,
             PHENOM_X4.seconds_per_mcmc_loop_parameter),
        ]
        for derived, preset in pairs:
            assert preset / 2.5 < derived < preset * 2.5, (derived, preset)

    def test_mcmc_speedup_closes_the_loop(self):
        """The derived MCMC constants must reproduce the paper's 33.6x
        when fed back through the model (self-consistency)."""
        d = derive_constants()
        m = PAPER
        updates = m.table3_n_voxels * m.table3_n_loops * m.table3_n_params
        gpu = updates * d.seconds_per_wavefront_mcmc_update / (
            m.wavefront_size * m.n_slots
        )
        cpu = updates * d.host_seconds_per_mcmc_update
        assert cpu / gpu == pytest.approx(
            m.table3_cpu_s / m.table3_gpu_s, rel=1e-9
        )

    def test_cpu_step_matches_paper_ratio(self):
        d = derive_constants()
        assert d.host_seconds_per_iteration == pytest.approx(
            289.6 / 113_822_762.0, rel=1e-12
        )

    def test_transfer_latency_scale(self):
        # Paper: 41.21 s over 44,400 launches, two transfers each.
        d = derive_constants()
        assert d.transfer_latency_s == pytest.approx(
            41.21 / (888 * 50) / 2, rel=1e-12
        )

    def test_custom_measurements(self):
        m = PaperMeasurements(table2_kernel_s=6.04)  # half the throughput
        d_slow = derive_constants(m)
        d_ref = derive_constants()
        assert d_slow.seconds_per_wavefront_iteration == pytest.approx(
            2 * d_ref.seconds_per_wavefront_iteration
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            derive_constants(PaperMeasurements(table2_kernel_s=0.0))
