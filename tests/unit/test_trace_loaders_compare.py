"""Tests for trace export, acquisition loading, and run comparison."""

import json

import numpy as np
import pytest

from repro.analysis.compare import compare_lengths, dice_overlap
from repro.data.loaders import load_acquisition
from repro.errors import ConfigurationError, DataError, DeviceError
from repro.gpu import Timeline
from repro.gpu.trace_export import timeline_to_trace_events, write_chrome_trace
from repro.io import Volume, write_bvals_bvecs, write_nifti


class TestTraceExport:
    def make_timeline(self):
        tl = Timeline()
        tl.add("transfer", "up", 1.0, stream=0)
        tl.add("kernel", "k0", 2.0, stream=0)
        tl.add("kernel", "k1", 2.0, stream=1)
        tl.add("reduction", "r0", 0.5, stream=0)
        return tl

    def test_serial_events_back_to_back(self):
        tl = self.make_timeline()
        ev = timeline_to_trace_events(tl, schedule="serial")
        assert [e["ts"] for e in ev] == [0.0, 1.0e6, 3.0e6, 5.0e6]
        assert ev[-1]["ts"] + ev[-1]["dur"] == pytest.approx(
            tl.serial_end() * 1e6
        )

    def test_overlapped_matches_timeline_end(self):
        tl = self.make_timeline()
        ev = timeline_to_trace_events(tl, schedule="overlapped")
        end = max(e["ts"] + e["dur"] for e in ev)
        assert end == pytest.approx(tl.overlapped_end() * 1e6)

    def test_resources_map_to_tids(self):
        ev = timeline_to_trace_events(self.make_timeline())
        kinds = {e["cat"]: e["tid"] for e in ev}
        assert kinds["kernel"] == 0 and kinds["transfer"] == 1
        assert kinds["reduction"] == 2

    def test_write_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self.make_timeline())
        blob = json.loads(path.read_text())
        names = [e for e in blob["traceEvents"] if e.get("ph") == "M"]
        assert len(names) == 3
        assert any(e.get("ph") == "X" for e in blob["traceEvents"])

    def test_bad_schedule(self):
        with pytest.raises(DeviceError):
            timeline_to_trace_events(Timeline(), schedule="magic")


class TestLoadAcquisition:
    def write_session(self, d, n_dirs=6, with_masks=True):
        from repro.data import make_gradient_table

        gtab = make_gradient_table(n_directions=n_dirs, n_b0=2)
        data = np.random.default_rng(0).uniform(
            10, 100, size=(6, 5, 4, len(gtab))
        )
        write_nifti(d / "dwi.nii.gz", Volume(data.astype(np.float32)))
        write_bvals_bvecs(gtab, d / "bvals", d / "bvecs")
        if with_masks:
            mask = np.ones((6, 5, 4), dtype=np.uint8)
            write_nifti(d / "mask.nii.gz", Volume(mask))
        return gtab

    def test_round_trip(self, tmp_path):
        gtab = self.write_session(tmp_path)
        acq = load_acquisition(tmp_path)
        assert acq.dwi.data.shape == (6, 5, 4, len(gtab))
        assert acq.n_valid == 6 * 5 * 4
        assert acq.wm_mask is None
        np.testing.assert_allclose(acq.gtab.bvals, gtab.bvals, atol=1e-4)

    def test_default_mask_all_ones(self, tmp_path):
        self.write_session(tmp_path, with_masks=False)
        acq = load_acquisition(tmp_path)
        assert acq.mask.all()

    def test_missing_files(self, tmp_path):
        with pytest.raises(DataError, match="dwi"):
            load_acquisition(tmp_path)
        self.write_session(tmp_path)
        (tmp_path / "bvals").unlink()
        with pytest.raises(DataError, match="bvals"):
            load_acquisition(tmp_path)

    def test_frame_count_mismatch(self, tmp_path):
        self.write_session(tmp_path)
        # Overwrite bvals/bvecs with a shorter table.
        from repro.data import make_gradient_table

        write_bvals_bvecs(
            make_gradient_table(n_directions=3, n_b0=1),
            tmp_path / "bvals",
            tmp_path / "bvecs",
        )
        with pytest.raises(DataError, match="frames"):
            load_acquisition(tmp_path)

    def test_mask_shape_mismatch(self, tmp_path):
        self.write_session(tmp_path)
        write_nifti(
            tmp_path / "mask.nii.gz", Volume(np.ones((2, 2, 2), dtype=np.uint8))
        )
        with pytest.raises(DataError, match="mask"):
            load_acquisition(tmp_path)

    def test_cli_phantom_output_loads(self, tmp_path):
        from repro.cli import phantom_main

        phantom_main([str(tmp_path / "p"), "--scale", "0.12"])
        acq = load_acquisition(tmp_path / "p")
        assert acq.wm_mask is not None
        assert 0 < acq.wm_mask.sum() < acq.n_valid


class TestCompare:
    def test_identical_runs(self):
        a = np.array([3, 5, 7, 9])
        c = compare_lengths(a, a, a * 0, a * 0)
        assert c.identical_lengths == 1.0
        assert c.length_correlation == 1.0
        assert c.mean_abs_diff == 0.0
        assert c.identical_reasons == 1.0
        assert c.substantially_same

    def test_diverging_runs(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 100, size=200)
        b = a + rng.integers(0, 10, size=200)
        c = compare_lengths(a, b)
        assert c.identical_lengths < 0.5
        assert c.length_correlation > 0.9
        assert c.mean_abs_diff > 0
        assert np.isnan(c.identical_reasons)
        assert not c.substantially_same

    def test_constant_arrays(self):
        c = compare_lengths(np.full(5, 7), np.full(5, 7))
        assert c.length_correlation == 1.0
        c2 = compare_lengths(np.full(5, 7), np.full(5, 8))
        assert c2.length_correlation == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compare_lengths(np.ones(3), np.ones(4))
        with pytest.raises(ConfigurationError):
            compare_lengths(np.ones(3), np.ones(3), np.ones(2), np.ones(3))

    def test_dice(self):
        a = np.zeros((4, 4, 4))
        b = np.zeros((4, 4, 4))
        a[:2] = 1
        b[1:3] = 1
        # |A|=32, |B|=32, |A&B|=16 -> dice 0.5
        assert dice_overlap(a, b) == pytest.approx(0.5)
        assert dice_overlap(a, a) == 1.0
        assert dice_overlap(np.zeros((2, 2, 2)), np.zeros((2, 2, 2))) == 1.0
        with pytest.raises(ConfigurationError):
            dice_overlap(np.zeros((2, 2)), np.zeros((3, 3)))
