"""The docs satellite stays honest: links resolve, doctests pass.

Runs the same checks as the CI ``docs`` job (``tools/check_docs.py``)
so a broken link or a drifted doctest fails tier-1 locally, not just in
the workflow.
"""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_markdown_links_resolve():
    checker = load_checker()
    assert checker.check_links() == []


def test_doctest_modules_pass():
    checker = load_checker()
    sys.path.insert(0, str(REPO / "src"))
    try:
        assert checker.check_doctests() == []
    finally:
        sys.path.remove(str(REPO / "src"))


def test_link_extractor_skips_external_and_fences():
    checker = load_checker()
    text = (
        "[ok](docs/architecture.md) [web](https://example.com) "
        "[anchor](#section)\n```\n[fenced](nope.md)\n```\n"
        "![img](figs/a.png)"
    )
    assert list(checker.iter_local_links(text)) == [
        "docs/architecture.md",
        "figs/a.png",
    ]


def test_readme_links_every_docs_page():
    readme = (REPO / "README.md").read_text()
    for page in (
        "docs/architecture.md",
        "docs/observability.md",
        "docs/fault-tolerance.md",
        "docs/parallelism.md",
        "docs/configuration.md",
    ):
        assert page in readme, f"README must link {page}"


def test_example_specs_resolve():
    checker = load_checker()
    sys.path.insert(0, str(REPO / "src"))
    try:
        assert checker.check_example_specs() == []
    finally:
        sys.path.remove(str(REPO / "src"))
