"""Unit tests for the paper-scale projection (repro.analysis.projection)."""

import numpy as np
import pytest

from repro.analysis.projection import (
    ProjectedTimes,
    project_tracking_times,
    segment_executed,
)
from repro.errors import ConfigurationError
from repro.gpu.presets import PHENOM_X4, RADEON_5870
from repro.tracking.segmentation import (
    SingleSegmentStrategy,
    UniformStrategy,
    paper_strategy_b,
)


class TestSegmentExecuted:
    def test_simple_decomposition(self):
        lengths = np.array([0, 3, 7, 12])
        segs = segment_executed(lengths, [5, 5, 5])
        # Segment 0: every thread present; executed = min(len,5)(+stop it.)
        np.testing.assert_array_equal(segs[0], [1, 4, 5, 5])
        # Segment 1: threads with len>5 (7, 12): executed 3(stop), 5.
        np.testing.assert_array_equal(segs[1], [3, 5])
        # Segment 2: len>10 (12): executed 2+stop=3.
        np.testing.assert_array_equal(segs[2], [3])

    def test_stops_when_drained(self):
        segs = segment_executed(np.array([2, 3]), [5, 5, 5])
        assert len(segs) == 1

    def test_executed_capped_at_duration(self):
        segs = segment_executed(np.array([100]), [10])
        np.testing.assert_array_equal(segs[0], [10])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            segment_executed(np.array([-1]), [5])
        with pytest.raises(ConfigurationError):
            segment_executed(np.array([1]), [0])


class TestProjection:
    def make_lengths(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        return np.minimum(
            rng.exponential(scale=30.0, size=(4, n)).astype(int), 200
        )

    def test_identity_scale_consistent_with_components(self):
        lengths = self.make_lengths()
        p = project_tracking_times(
            lengths, UniformStrategy(20).segments(200), RADEON_5870, PHENOM_X4
        )
        assert isinstance(p, ProjectedTimes)
        assert p.total_s == pytest.approx(p.kernel_s + p.reduction_s + p.transfer_s)
        assert p.cpu_s == pytest.approx(
            lengths.sum() * PHENOM_X4.seconds_per_iteration
        )

    def test_tiling_scales_cpu_linearly(self):
        lengths = self.make_lengths()
        base = project_tracking_times(
            lengths, [200], RADEON_5870, PHENOM_X4
        )
        big = project_tracking_times(
            lengths, [200], RADEON_5870, PHENOM_X4, target_threads=4000
        )
        assert big.cpu_s == pytest.approx(10 * base.cpu_s)
        assert big.n_threads == 4000

    def test_paper_scale_table4_shape(self):
        """The headline Table IV ordering must emerge at paper scale."""
        rng = np.random.default_rng(1)
        lengths = np.minimum(
            rng.exponential(scale=39.0, size=(10, 2000)).astype(int), 888
        )
        img = 442_368 * 2 * 4 * 4

        def total(strategy):
            return project_tracking_times(
                lengths,
                strategy.segments(888),
                RADEON_5870,
                PHENOM_X4,
                target_threads=205_082,
                image_bytes_per_sample=img,
            )

        a1 = total(UniformStrategy(1))
        a20 = total(UniformStrategy(20))
        mono = total(SingleSegmentStrategy())
        b = total(paper_strategy_b())
        # Extremes lose:
        assert a1.total_s > 2 * a20.total_s
        assert mono.total_s > 2 * a20.total_s
        # A1 is transfer-bound; the monolith is kernel-bound:
        assert a1.transfer_s > a1.kernel_s
        assert mono.kernel_s > 10 * mono.transfer_s
        # The increasing-interval strategy is near the sweet spot:
        assert b.total_s < 1.5 * a20.total_s
        # And the modeled end-to-end speedup lands in the paper's band.
        assert 20 < b.speedup < 100

    def test_image_bytes_add_transfer(self):
        lengths = self.make_lengths()
        without = project_tracking_times(lengths, [200], RADEON_5870, PHENOM_X4)
        with_img = project_tracking_times(
            lengths, [200], RADEON_5870, PHENOM_X4, image_bytes_per_sample=10**7
        )
        assert with_img.transfer_s > without.transfer_s
        assert with_img.kernel_s == pytest.approx(without.kernel_s)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            project_tracking_times(
                np.zeros((2, 0)), [5], RADEON_5870, PHENOM_X4
            )
        with pytest.raises(ConfigurationError):
            project_tracking_times(
                np.zeros((2, 3)), [5], RADEON_5870, PHENOM_X4, target_threads=0
            )
