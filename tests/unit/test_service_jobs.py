"""Unit tests for the service primitives (ISSUE 9).

Covers, with no phantom synthesis and no worker processes:

* the job state machine (every legal edge, every illegal edge);
* :func:`job_key` content addressing — telemetry-invariant, dataset- and
  spec-sensitive;
* dataset / wire-request validation;
* :class:`JobStore` round-trips, atomicity, and scan ordering;
* :class:`BoundedJobQueue` backpressure and cancellation removal;
* :class:`WorkerBudget` packing math.
"""

import itertools
import json
import threading

import pytest

from repro.config import RunSpec
from repro.errors import (
    ConfigurationError,
    JobQueueFullError,
    JobStateError,
    ServiceError,
    UnknownJobError,
)
from repro.service import (
    JOB_STATES,
    TERMINAL_STATES,
    BoundedJobQueue,
    JobRecord,
    JobStore,
    WorkerBudget,
    check_transition,
    default_dataset,
    job_key,
    parse_job_request,
    validate_dataset,
)

SPEC_DOC = {"sampling": {"n_samples": 4}, "tracking": {"max_steps": 48}}

LEGAL_EDGES = [
    ("queued", "running"),
    ("queued", "cancelled"),
    ("queued", "queued"),
    ("running", "done"),
    ("running", "failed"),
    ("running", "cancelled"),
    ("running", "queued"),  # restart recovery
]


class TestStateMachine:
    @pytest.mark.parametrize("old,new", LEGAL_EDGES)
    def test_legal_edges(self, old, new):
        check_transition(old, new)

    @pytest.mark.parametrize(
        "old,new",
        [
            e
            for e in itertools.product(JOB_STATES, JOB_STATES)
            if e not in LEGAL_EDGES
        ],
    )
    def test_illegal_edges(self, old, new):
        with pytest.raises(JobStateError):
            check_transition(old, new)

    def test_terminal_states_absorb(self):
        for term in TERMINAL_STATES:
            for new in JOB_STATES:
                with pytest.raises(JobStateError):
                    check_transition(term, new)

    def test_unknown_state_rejected(self):
        with pytest.raises(JobStateError):
            check_transition("queued", "paused")

    def test_transition_bookkeeping(self):
        rec = JobRecord.new("sha256:ab", default_dataset(), SPEC_DOC)
        assert rec.state == "queued" and rec.runs == 0
        rec.transition("running")
        assert rec.runs == 1 and rec.started_s is not None
        rec.transition("failed")
        assert rec.finished_s is not None
        rec.error = "boom"
        # requeue-after-failure resets the failure bookkeeping
        rec.state = "queued"
        rec.transition("queued")
        assert rec.requeues == 1 and rec.error is None

    def test_error_taxonomy(self):
        assert issubclass(JobStateError, ServiceError)
        assert issubclass(JobQueueFullError, ServiceError)
        assert issubclass(UnknownJobError, ServiceError)
        assert JobQueueFullError.http_status == 429
        assert UnknownJobError.http_status == 404
        assert JobStateError.http_status == 409


class TestJobKey:
    def test_telemetry_invariant(self):
        plain = RunSpec.from_dict(SPEC_DOC)
        routed = RunSpec.from_dict(
            {**SPEC_DOC, "telemetry": {"metrics_out": "m.json", "cache": False}}
        )
        assert job_key(default_dataset(), plain) == job_key(
            default_dataset(), routed
        )

    def test_spec_sensitive(self):
        a = RunSpec.from_dict(SPEC_DOC)
        b = RunSpec.from_dict({**SPEC_DOC, "tracking": {"max_steps": 64}})
        assert job_key(default_dataset(), a) != job_key(default_dataset(), b)

    def test_dataset_sensitive(self):
        spec = RunSpec.from_dict(SPEC_DOC)
        assert job_key({"name": "dataset1"}, spec) != job_key(
            {"name": "dataset2"}, spec
        )
        assert job_key({"snr": 40.0}, spec) != job_key({"snr": 25.0}, spec)

    def test_dataset_normalization_stable(self):
        spec = RunSpec.from_dict(SPEC_DOC)
        # defaults spelled out == defaults omitted
        assert job_key({}, spec) == job_key(default_dataset(), spec)

    def test_worker_count_splits_jobs_but_not_stages(self):
        """Two-level cache semantics: a spec differing only in worker
        count is a distinct *job* (the result cache is an exact
        content-hash match), but its *stage* hashes are identical, so
        the second job runs warm against the first one's artifacts."""
        a = RunSpec.from_dict({**SPEC_DOC, "runtime": {"n_workers": 1}})
        b = RunSpec.from_dict({**SPEC_DOC, "runtime": {"n_workers": 4}})
        assert job_key(default_dataset(), a) != job_key(default_dataset(), b)
        for stage in ("sampling", "tracking"):
            assert a.stage_hash(stage) == b.stage_hash(stage)


class TestValidation:
    def test_unknown_dataset_field(self):
        with pytest.raises(ConfigurationError, match="unknown field"):
            validate_dataset({"nmae": "dataset1"})

    def test_unknown_dataset_name(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            validate_dataset({"name": "dataset9"})

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError, match="positive"):
            validate_dataset({"scale": 0})
        with pytest.raises(ConfigurationError, match="expected float"):
            validate_dataset({"scale": "big"})

    def test_request_shape(self):
        dataset, spec = parse_job_request({"spec": SPEC_DOC})
        assert dataset == default_dataset()
        assert spec.tracking.max_steps == 48

    def test_request_dataset_override_merges(self):
        dataset, _ = parse_job_request(
            {"spec": SPEC_DOC, "dataset": {"snr": 25.0}},
            {"name": "dataset2", "scale": 0.2},
        )
        assert dataset["name"] == "dataset2"
        assert dataset["scale"] == 0.2
        assert dataset["snr"] == 25.0

    def test_request_unknown_key(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            parse_job_request({"spec": SPEC_DOC, "sepc": {}})

    def test_request_bad_spec_section(self):
        with pytest.raises(ConfigurationError):
            parse_job_request({"spec": {"smapling": {}}})


class TestJobStore:
    def test_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        rec = JobRecord.new("sha256:" + "ab" * 32, default_dataset(), SPEC_DOC)
        store.save(rec)
        back = store.load(rec.job_id)
        assert back.to_dict() == rec.to_dict()

    def test_unknown_job(self, tmp_path):
        with pytest.raises(UnknownJobError):
            JobStore(tmp_path).load("j-missing")

    def test_save_is_atomic(self, tmp_path):
        store = JobStore(tmp_path)
        rec = JobRecord.new("sha256:" + "cd" * 32, default_dataset(), SPEC_DOC)
        store.save(rec)
        rec.transition("running")
        store.save(rec)
        # no stray tmp files; exactly the one consistent document
        files = sorted(p.name for p in store.job_dir(rec.job_id).iterdir())
        assert files == ["job.json"]
        assert store.load(rec.job_id).state == "running"

    def test_scan_orders_and_skips_garbage(self, tmp_path):
        store = JobStore(tmp_path)
        recs = []
        for i, key in enumerate(["aa" * 32, "bb" * 32]):
            rec = JobRecord.new("sha256:" + key, default_dataset(), SPEC_DOC)
            rec.created_s = float(i)
            store.save(rec)
            recs.append(rec)
        # a corrupt record must not break recovery
        bad = store.job_dir("j-corrupt")
        (bad / "job.json").write_text("{not json")
        scanned = store.scan()
        assert [r.job_id for r in scanned] == [r.job_id for r in recs]

    def test_job_json_is_plain_json(self, tmp_path):
        store = JobStore(tmp_path)
        rec = JobRecord.new("sha256:" + "ee" * 32, default_dataset(), SPEC_DOC)
        store.save(rec)
        doc = json.loads((store.job_dir(rec.job_id) / "job.json").read_text())
        assert doc["state"] == "queued"
        assert doc["spec"] == SPEC_DOC


class TestBoundedJobQueue:
    def test_fifo(self):
        q = BoundedJobQueue(4)
        for jid in ("a", "b", "c"):
            q.put(jid)
        assert q.pop() == "a" and q.pop() == "b"
        assert len(q) == 1

    def test_backpressure_is_explicit(self):
        q = BoundedJobQueue(2)
        q.put("a")
        q.put("b")
        with pytest.raises(JobQueueFullError, match="retry later"):
            q.put("c")
        # rejection does not corrupt the queue
        assert q.snapshot() == ["a", "b"]
        # draining reopens admission
        assert q.pop() == "a"
        q.put("c")
        assert q.snapshot() == ["b", "c"]

    def test_remove_for_cancel(self):
        q = BoundedJobQueue(4)
        q.put("a")
        q.put("b")
        assert q.remove("a") is True
        assert q.remove("a") is False
        assert q.snapshot() == ["b"]

    def test_empty_pop(self):
        assert BoundedJobQueue(1).pop() is None

    def test_bad_limit_is_config_error(self):
        with pytest.raises(ConfigurationError):
            BoundedJobQueue(0)

    def test_thread_safety_under_contention(self):
        q = BoundedJobQueue(1000)
        errors = []

        def producer(tag):
            try:
                for i in range(100):
                    q.put(f"{tag}-{i}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=producer, args=(t,)) for t in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(q) == 500


class TestWorkerBudget:
    @pytest.mark.parametrize(
        "budget,slots,cap",
        [(8, 2, 4), (8, 3, 2), (3, 4, 1), (1, 1, 1), (16, 1, 16)],
    )
    def test_packing(self, budget, slots, cap):
        assert WorkerBudget(budget, slots).per_job_cap() == cap

    def test_never_zero(self):
        assert WorkerBudget(1, 8).per_job_cap() == 1

    def test_bad_args_are_config_errors(self):
        with pytest.raises(ConfigurationError):
            WorkerBudget(0, 1)
        with pytest.raises(ConfigurationError):
            WorkerBudget(4, 0)
