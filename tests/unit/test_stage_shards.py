"""Unit tests for the stage-generic shard executor (repro.runtime.stage).

Everything runs through :class:`InlineLauncher` via the executor's
``launcher_factory`` seam — scripted outcomes, fake clock, no real
processes — so the streaming in-task-order merge, the shared clamp
warning, and re-shard part ordering are tested in isolation from any
particular pipeline stage.
"""

import logging

import pytest

from repro.errors import ConfigurationError
from repro.runtime import StageShard, StageShardExecutor, default_workers
from repro.runtime.faults import FaultPlan
from repro.runtime.supervisor import InlineLauncher

pytestmark = pytest.mark.chaos


def _double(task):
    """Toy stage: a task is a list of global unit indices."""
    return [x * 2 for x in task]


#: Tasks are lists of consecutive ints whose values ARE their global
#: unit indices, so ``units`` needs no side table.
TOY = StageShard(
    stage="toy",
    unit="item",
    run=_double,
    split=lambda t: [[x] for x in t],
    units=lambda t: range(t[0], t[0] + len(t)),
)


class ReversedLauncher(InlineLauncher):
    """Resolves queued attempts in *reverse* start order — the adversarial
    completion order for the executor's in-order streaming gate."""

    def poll(self, jobs, timeout):
        return list(reversed(super().poll(jobs, timeout)))


def run_executor(tasks, script=None, *, n_workers=4, launcher_cls=InlineLauncher,
                 **kwargs):
    executor = StageShardExecutor(
        n_workers,
        launcher_factory=lambda: launcher_cls(script or {}),
        **kwargs,
    )
    consumed = []
    report = executor.run(
        TOY, tasks, lambda i, parts: consumed.append((i, parts))
    )
    return consumed, report


class TestDefaultWorkers:
    def test_at_least_one(self):
        assert default_workers() >= 1

    def test_executor_rejects_bad_pool_size(self):
        with pytest.raises(ConfigurationError):
            StageShardExecutor(0)


class TestPlanShards:
    def test_clamps_to_unit_count(self):
        executor = StageShardExecutor(8)
        assert executor.plan_shards(TOY, 3) == 3
        assert StageShardExecutor(2).plan_shards(TOY, 3) == 2

    def test_zero_units_rejected(self):
        with pytest.raises(ConfigurationError, match="toy"):
            StageShardExecutor(2).plan_shards(TOY, 0)

    def test_clamp_logged_once_with_stage_unit(self, caplog):
        executor = StageShardExecutor(8)
        with caplog.at_level(logging.INFO, logger="repro.runtime.stage"):
            executor.plan_shards(TOY, 3)
            executor.plan_shards(TOY, 2)
        clamps = [m for m in caplog.messages if "clamping n_workers" in m]
        assert len(clamps) == 1
        assert "item" in clamps[0]


class TestStreamingOrder:
    def test_payloads_consumed_in_task_order(self):
        tasks = [[0], [1], [2], [3]]
        consumed, report = run_executor(tasks)
        assert consumed == [(i, [[2 * i]]) for i in range(4)]
        assert report.n_failures == 0

    def test_adversarial_completion_order_still_streams_in_order(self):
        # ReversedLauncher completes task 3 first: the executor must
        # buffer 3, 2, 1 and flush the moment task 0 lands.
        tasks = [[0], [1], [2], [3]]
        consumed, _ = run_executor(tasks, launcher_cls=ReversedLauncher)
        assert [i for i, _ in consumed] == [0, 1, 2, 3]

    def test_retried_task_gates_later_completions(self):
        # Task 0 crashes once; tasks 1-2 complete first but must wait.
        tasks = [[0], [1], [2]]
        consumed, report = run_executor(tasks, {(0, 0): "crash"})
        assert [i for i, _ in consumed] == [0, 1, 2]
        assert report.n_retries == 1

    def test_reshard_parts_arrive_in_unit_order(self):
        # Every pooled attempt of the 3-unit task fails; the re-shard's
        # single-unit payloads must be delivered as one ordered part list.
        script = {(0, a): "crash" for a in range(3)}
        consumed, report = run_executor([[0, 1, 2], [3]], script, max_retries=2)
        assert consumed == [(0, [[0], [2], [4]]), (1, [[6]])]
        assert report.reshards == [0]

    def test_consume_exception_propagates(self):
        executor = StageShardExecutor(2, launcher_factory=InlineLauncher)

        def boom(i, parts):
            raise RuntimeError("merge failed")

        with pytest.raises(RuntimeError, match="merge failed"):
            executor.run(TOY, [[0], [1]], boom)

    def test_empty_task_list_rejected(self):
        with pytest.raises(ConfigurationError, match="no shard tasks"):
            run_executor([])


class TestInlineSingleTask:
    def test_single_task_runs_in_parent(self):
        def throwing_factory():
            raise AssertionError("no launcher should be built")

        executor = StageShardExecutor(4, launcher_factory=throwing_factory)
        consumed = []
        report = executor.run(
            TOY, [[0, 1]], lambda i, parts: consumed.append((i, parts))
        )
        assert report is None
        assert consumed == [(0, [[0, 2]])]

    def test_fault_plan_disables_the_inline_shortcut(self):
        # A fault plan must reach the supervisor even for one task.
        executor = StageShardExecutor(
            4,
            fault_plan=FaultPlan.parse("crash:0"),
            launcher_factory=InlineLauncher,
        )
        consumed = []
        report = executor.run(
            TOY, [[0, 1]], lambda i, parts: consumed.append((i, parts))
        )
        assert report is not None
        assert report.n_failures == 1
        assert consumed == [(0, [[0, 2]])]

    def test_inline_single_false_supervises(self):
        executor = StageShardExecutor(4, launcher_factory=InlineLauncher)
        consumed = []
        report = executor.run(
            TOY,
            [[0]],
            lambda i, parts: consumed.append((i, parts)),
            inline_single=False,
        )
        assert report is not None and report.n_shards == 1
        assert consumed == [(0, [[0]])]
