"""Unit tests for the connectome stage's building blocks.

Atlas construction, endpoint counting, graph export, the spec section,
and the seed-block shard contract — each testable without running the
MCMC or the tracker.
"""

import numpy as np
import pytest

from repro.config import ConnectomeSpec, RunSpec
from repro.connectome import (
    Atlas,
    build_atlas,
    connectome_graph,
    endpoint_connectome,
    seed_blocks,
)
from repro.errors import ConfigurationError
from repro.tracking.streamline import Streamline, StopReason


def _line(start, end):
    return Streamline(
        points=np.array([start, end], dtype=np.float64),
        reason=StopReason.ANGLE,
    )


class TestBuildAtlas:
    def test_octant_labels_and_sizes(self):
        atlas = build_atlas("octant", (4, 4, 4))
        assert atlas.n_rois == 8
        assert atlas.labels.dtype == np.int32
        assert atlas.labels.shape == (4, 4, 4)
        # Full coverage, 8 equal octants of 2x2x2 voxels.
        np.testing.assert_array_equal(atlas.roi_sizes(), np.full(8, 8))
        assert atlas.labels[0, 0, 0] == 0
        assert atlas.labels[3, 3, 3] == 7

    def test_slabs_partition_x_axis(self):
        atlas = build_atlas("slabs3", (6, 2, 2))
        assert atlas.n_rois == 3
        assert set(np.unique(atlas.labels)) == {0, 1, 2}
        # Slabs vary only along x.
        assert np.all(atlas.labels[0] == 0)
        assert np.all(atlas.labels[5] == 2)
        assert np.all(atlas.labels == atlas.labels[:, :1, :1])

    def test_grid_k_cubed(self):
        atlas = build_atlas("grid2", (4, 6, 8))
        assert atlas.n_rois == 8
        assert atlas.roi_sizes().sum() == 4 * 6 * 8

    def test_uneven_extents_still_cover(self):
        atlas = build_atlas("slabs3", (7, 1, 1))
        assert atlas.roi_sizes().sum() == 7
        assert atlas.roi_sizes().min() >= 2

    def test_determinism(self):
        a = build_atlas("grid3", (9, 9, 9))
        b = build_atlas("grid3", (9, 9, 9))
        np.testing.assert_array_equal(a.labels, b.labels)

    @pytest.mark.parametrize(
        "name", ["none", "bogus", "slabs0", "grid0", "slabs", "octants"]
    )
    def test_bad_names_raise(self, name):
        with pytest.raises(ConfigurationError):
            build_atlas(name, (4, 4, 4))

    def test_finer_than_grid_raises(self):
        with pytest.raises(ConfigurationError, match="needs at least"):
            build_atlas("grid4", (3, 8, 8))

    def test_bad_shape_raises(self):
        with pytest.raises(ConfigurationError):
            build_atlas("octant", (4, 4))
        with pytest.raises(ConfigurationError):
            build_atlas("octant", (4, 0, 4))


class TestLabelAt:
    def test_rounds_half_up_and_clips(self):
        atlas = build_atlas("slabs4", (4, 1, 1))
        pts = np.array(
            [
                [0.0, 0.0, 0.0],
                [0.49, 0.0, 0.0],
                [0.5, 0.0, 0.0],   # rounds up to voxel 1
                [3.4, 0.0, 0.0],
                [-2.0, 0.0, 0.0],  # clipped to voxel 0
                [9.0, 0.0, 0.0],   # clipped to voxel 3
            ]
        )
        np.testing.assert_array_equal(
            atlas.label_at(pts), [0, 0, 1, 3, 0, 3]
        )

    def test_bad_points_shape_raises(self):
        atlas = build_atlas("octant", (4, 4, 4))
        with pytest.raises(ConfigurationError):
            atlas.label_at(np.zeros((3, 2)))


class TestEndpointConnectome:
    def test_symmetric_counts_and_diagonal_once(self):
        atlas = build_atlas("slabs2", (4, 1, 1))
        lines = [
            _line([0, 0, 0], [3, 0, 0]),  # ROI 0 -> ROI 1
            _line([3, 0, 0], [0, 0, 0]),  # ROI 1 -> ROI 0 (same edge)
            _line([0, 0, 0], [1, 0, 0]),  # ROI 0 self-loop
        ]
        counts, n = endpoint_connectome(lines, atlas)
        assert n == 3
        assert counts.dtype == np.int64
        np.testing.assert_array_equal(counts, [[1, 2], [2, 0]])
        np.testing.assert_array_equal(counts, counts.T)
        # The shard invariant: upper triangle sums to n_counted.
        assert int(np.triu(counts).sum()) == n

    def test_min_steps_filters(self):
        atlas = build_atlas("slabs2", (4, 1, 1))
        short = _line([0, 0, 0], [3, 0, 0])  # 1 step
        long = Streamline(
            points=np.array(
                [[0, 0, 0], [1, 0, 0], [2, 0, 0], [3, 0, 0]], dtype=float
            ),
            reason=StopReason.ANGLE,
        )  # 3 steps
        counts, n = endpoint_connectome([short, long], atlas, min_steps=2)
        assert n == 1
        assert counts.sum() == 2  # one off-diagonal pair, both triangles

    def test_negative_min_steps_raises(self):
        atlas = build_atlas("octant", (4, 4, 4))
        with pytest.raises(ConfigurationError):
            endpoint_connectome([], atlas, min_steps=-1)

    def test_empty_input(self):
        atlas = build_atlas("octant", (4, 4, 4))
        counts, n = endpoint_connectome([], atlas)
        assert n == 0
        assert counts.sum() == 0


class TestConnectomeGraph:
    def _fixture(self):
        atlas = build_atlas("slabs2", (4, 1, 1))
        counts = np.array([[1, 2], [2, 0]], dtype=np.int64)
        return atlas, counts

    def test_count_weights(self):
        atlas, counts = self._fixture()
        g = connectome_graph(counts, atlas, normalize="count", n_streamlines=3)
        assert g["atlas"] == "slabs2"
        assert g["n_rois"] == 2
        assert g["n_streamlines"] == 3
        assert [n["n_voxels"] for n in g["nodes"]] == [2, 2]
        # Upper triangle only, zero edges dropped.
        assert g["edges"] == [
            {"source": 0, "target": 0, "count": 1, "weight": 1},
            {"source": 0, "target": 1, "count": 2, "weight": 2},
        ]

    def test_fraction_weights(self):
        atlas, counts = self._fixture()
        g = connectome_graph(
            counts, atlas, normalize="fraction", n_streamlines=3
        )
        weights = [e["weight"] for e in g["edges"]]
        assert weights == pytest.approx([1 / 3, 2 / 3])

    def test_total_defaults_to_upper_triangle(self):
        atlas, counts = self._fixture()
        g = connectome_graph(counts, atlas)
        assert g["n_streamlines"] == 3

    def test_json_safe_and_stable(self):
        import json

        atlas, counts = self._fixture()
        g = connectome_graph(counts, atlas)
        assert json.dumps(g, sort_keys=True) == json.dumps(g, sort_keys=True)

    def test_bad_normalize_raises(self):
        atlas, counts = self._fixture()
        with pytest.raises(ConfigurationError):
            connectome_graph(counts, atlas, normalize="zscore")

    def test_shape_mismatch_raises(self):
        atlas, _ = self._fixture()
        with pytest.raises(ConfigurationError):
            connectome_graph(np.zeros((3, 3)), atlas)


class TestConnectomeSpec:
    def test_defaults_disable_the_stage(self):
        spec = RunSpec()
        assert spec.connectome.atlas == "none"
        assert spec.connectome.min_steps == 0
        assert spec.connectome.normalize == "count"
        assert spec.runtime.connectome_workers == 1

    @pytest.mark.parametrize(
        "atlas", ["none", "octant", "slabs4", "grid2", "grid10"]
    )
    def test_valid_atlas_names(self, atlas):
        assert ConnectomeSpec(atlas=atlas).atlas == atlas

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"atlas": "bogus"},
            {"atlas": "slabs0"},
            {"atlas": "grid"},
            {"min_steps": -1},
            {"normalize": "zscore"},
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            ConnectomeSpec(**kwargs)

    def test_round_trips_through_dict(self):
        spec = RunSpec.from_dict(
            {"connectome": {"atlas": "grid2", "min_steps": 5}}
        )
        doc = spec.to_dict()
        assert doc["connectome"]["atlas"] == "grid2"
        assert doc["connectome"]["min_steps"] == 5
        assert RunSpec.from_dict(doc) == spec

    def test_dotted_override(self):
        spec = RunSpec().with_overrides(
            {"connectome.atlas": "octant", "runtime.connectome_workers": 3}
        )
        assert spec.connectome.atlas == "octant"
        assert spec.runtime.connectome_workers == 3

    def test_connectome_workers_validated(self):
        with pytest.raises(ConfigurationError):
            RunSpec().with_overrides({"runtime.connectome_workers": 0})


class TestSeedBlocks:
    def test_partition_covers_range(self):
        blocks = seed_blocks(130, 64)
        assert blocks == [(0, 64), (64, 128), (128, 130)]

    def test_empty(self):
        assert seed_blocks(0, 64) == []

    def test_atlas_rebuild_matches_parent(self):
        # Shards ship (name, shape) instead of the label volume; the
        # worker-side rebuild must be identical.
        a = build_atlas("grid2", (6, 6, 6))
        b = build_atlas("grid2", (6, 6, 6))
        assert isinstance(a, Atlas)
        np.testing.assert_array_equal(a.labels, b.labels)
