"""Unit tests for the GPU execution-model simulator (repro.gpu)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeviceError
from repro.gpu import (
    PHENOM_X4,
    RADEON_5870,
    DeviceBuffer,
    DeviceMemory,
    DeviceSpec,
    Image3D,
    KernelLaunch,
    Timeline,
    kernel_time,
    n_wavefronts,
    reduction_time,
    transfer_time,
    utilization,
    wasted_lane_iterations,
    wavefront_times,
)
from repro.gpu.occupancy import rectangle_area
from repro.gpu.presets import NVIDIA_WARP32


def small_spec(**overrides):
    base = dict(
        name="test",
        wavefront_size=4,
        n_slots=2,
        seconds_per_wavefront_iteration=1.0,
        kernel_launch_overhead_s=0.5,
        transfer_latency_s=0.1,
        transfer_bandwidth_bps=100.0,
        memory_bytes=1000,
    )
    base.update(overrides)
    return DeviceSpec(**base)


class TestDeviceSpec:
    def test_peak_throughput(self):
        spec = small_spec()
        assert spec.peak_thread_iterations_per_second == pytest.approx(8.0)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(wavefront_size=0),
            dict(n_slots=0),
            dict(seconds_per_wavefront_iteration=0.0),
            dict(transfer_bandwidth_bps=-1.0),
            dict(memory_bytes=0),
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ConfigurationError):
            small_spec(**overrides)

    def test_presets_sane(self):
        assert RADEON_5870.wavefront_size == 64
        assert NVIDIA_WARP32.wavefront_size == 32
        assert PHENOM_X4.seconds_per_iteration > 0
        # Paper-calibrated raw throughput in the tens of millions of
        # thread-iterations per second.
        assert 1e7 < RADEON_5870.peak_thread_iterations_per_second < 1e8


class TestWavefrontTimes:
    def test_grouping_and_max(self):
        iters = np.array([1, 5, 2, 3, 7, 1])
        waves = wavefront_times(iters, 4)
        np.testing.assert_array_equal(waves, [5, 7])

    def test_exact_multiple(self):
        waves = wavefront_times(np.array([2, 2, 9, 2]), 2)
        np.testing.assert_array_equal(waves, [2, 9])

    def test_empty(self):
        assert wavefront_times(np.array([]), 4).size == 0

    def test_validation(self):
        with pytest.raises(DeviceError):
            wavefront_times(np.array([[1, 2]]), 4)
        with pytest.raises(DeviceError):
            wavefront_times(np.array([-1]), 4)


class TestKernelTime:
    def test_single_wavefront(self):
        spec = small_spec()
        t = kernel_time(np.array([3, 1, 2]), spec)
        assert t == pytest.approx(0.5 + 3.0)

    def test_slots_parallelism(self):
        spec = small_spec()  # wavefront 4, 2 slots
        # Four wavefronts of max 1 each: two rounds over two slots.
        t = kernel_time(np.ones(16), spec)
        assert t == pytest.approx(0.5 + 2.0)

    def test_imbalance_gates_wavefront(self):
        spec = small_spec()
        balanced = kernel_time(np.full(4, 4), spec)
        skewed = kernel_time(np.array([1, 1, 1, 13]), spec)
        assert skewed > balanced  # same total work, worse time

    def test_in_order_dispatch_greedy(self):
        spec = small_spec(wavefront_size=1, n_slots=2, kernel_launch_overhead_s=1e-12)
        # Times 5,1,1,1,1,1: greedy slots -> slot0:5, slot1:1+1+1+1+1 -> 5.
        t = kernel_time(np.array([5, 1, 1, 1, 1, 1]), spec)
        assert t == pytest.approx(5.0)

    def test_empty_launch_costs_overhead(self):
        spec = small_spec()
        assert kernel_time(np.array([]), spec) == pytest.approx(0.5)

    def test_custom_iteration_cost(self):
        spec = small_spec()
        t = kernel_time(np.array([2]), spec, per_iteration_s=10.0)
        assert t == pytest.approx(0.5 + 20.0)


class TestTransferReduction:
    def test_transfer_latency_plus_bandwidth(self):
        spec = small_spec()
        assert transfer_time(0, spec) == pytest.approx(0.1)
        assert transfer_time(50, spec) == pytest.approx(0.1 + 0.5)

    def test_transfer_rejects_negative(self):
        with pytest.raises(DeviceError):
            transfer_time(-1, small_spec())

    def test_reduction_cost(self):
        t = reduction_time(1000, PHENOM_X4)
        assert t == pytest.approx(
            PHENOM_X4.reduction_base_s + 1000 * PHENOM_X4.reduction_seconds_per_item
        )

    def test_reduction_rejects_negative(self):
        with pytest.raises(DeviceError):
            reduction_time(-1, PHENOM_X4)

    def test_kernel_launch_record(self):
        k = KernelLaunch(
            label="seg0", n_threads=10, max_iterations=4,
            executed_iterations=20, seconds=1.0,
        )
        assert k.useful_fraction == pytest.approx(0.5)


class TestOccupancy:
    def test_n_wavefronts(self):
        assert n_wavefronts(0, 64) == 0
        assert n_wavefronts(1, 64) == 1
        assert n_wavefronts(64, 64) == 1
        assert n_wavefronts(65, 64) == 2

    def test_n_wavefronts_validation(self):
        with pytest.raises(DeviceError):
            n_wavefronts(-1, 64)
        with pytest.raises(DeviceError):
            n_wavefronts(1, 0)

    def test_waste_balanced_zero(self):
        assert wasted_lane_iterations(np.full(8, 5), 4) == 0.0

    def test_waste_counts_idle_lanes(self):
        # One wavefront [1, 5]: pays 2*5=10, useful 6, waste 4.
        assert wasted_lane_iterations(np.array([1, 5]), 2) == 4.0

    def test_waste_counts_padding(self):
        # Partial wavefront [5] with width 2: pays 10, useful 5.
        assert wasted_lane_iterations(np.array([5]), 2) == 5.0

    def test_utilization_range(self):
        assert utilization(np.array([]), 4) == 1.0
        assert utilization(np.full(4, 3), 4) == 1.0
        u = utilization(np.array([1, 9, 1, 1]), 4)
        assert 0 < u < 0.5

    def test_rectangle_area_single_segment(self):
        lengths = np.array([2.0, 5.0, 9.0])
        useful, paid, rects = rectangle_area(lengths, [10])
        assert useful == 16.0
        assert paid == 30.0  # 3 threads x 10 iterations
        assert rects == [(3, 10)]

    def test_rectangle_area_two_segments(self):
        lengths = np.array([2.0, 5.0, 9.0])
        useful, paid, rects = rectangle_area(lengths, [4, 6])
        # Segment 1: 3 active x 4; segment 2: 2 active (len>4) x 6.
        assert paid == 12.0 + 12.0
        assert rects == [(3, 4), (2, 6)]

    def test_rectangle_area_stops_when_drained(self):
        lengths = np.array([1.0, 2.0])
        useful, paid, rects = rectangle_area(lengths, [5, 5, 5])
        assert rects == [(2, 5)]

    def test_finer_segmentation_reduces_paid_area(self):
        rng = np.random.default_rng(0)
        lengths = rng.exponential(scale=30.0, size=500)
        maxstep = int(lengths.max()) + 1
        _, paid_coarse, _ = rectangle_area(lengths, [maxstep])
        fine = [10] * (maxstep // 10 + 1)
        _, paid_fine, _ = rectangle_area(lengths, fine)
        assert paid_fine < paid_coarse

    def test_rectangle_validation(self):
        with pytest.raises(DeviceError):
            rectangle_area(np.array([-1.0]), [5])
        with pytest.raises(DeviceError):
            rectangle_area(np.array([1.0]), [-5])


class TestMemory:
    def test_alloc_free_cycle(self):
        mem = DeviceMemory(small_spec())
        h = mem.alloc(DeviceBuffer("seeds", 600))
        assert mem.used_bytes == 600
        assert mem.free_bytes == 400
        mem.free(h)
        assert mem.used_bytes == 0

    def test_oom(self):
        mem = DeviceMemory(small_spec())
        mem.alloc(DeviceBuffer("a", 800))
        with pytest.raises(DeviceError, match="out of device memory"):
            mem.alloc(DeviceBuffer("b", 300))

    def test_peak_tracking(self):
        mem = DeviceMemory(small_spec())
        h = mem.alloc(DeviceBuffer("a", 700))
        mem.free(h)
        mem.alloc(DeviceBuffer("b", 100))
        assert mem.peak_bytes == 700

    def test_double_free_rejected(self):
        mem = DeviceMemory(small_spec())
        h = mem.alloc(DeviceBuffer("a", 10))
        mem.free(h)
        with pytest.raises(DeviceError):
            mem.free(h)

    def test_image3d_size(self):
        img = Image3D("f1", shape=(10, 10, 10), channels=2, itemsize=4)
        assert img.nbytes == 8000

    def test_image3d_validation(self):
        with pytest.raises(DeviceError):
            Image3D("bad", shape=(0, 1, 1))
        with pytest.raises(DeviceError):
            Image3D("bad", shape=(1, 1, 1), channels=0)

    def test_alloc_array(self):
        mem = DeviceMemory(small_spec())
        mem.alloc_array("arr", np.zeros(100, dtype=np.uint8))
        assert mem.used_bytes == 100

    def test_paper_rng_volume_does_not_fit(self):
        # The 20 GB of pre-generated randoms (paper § IV-A) must not fit
        # in the Radeon's 1 GiB.
        from repro.rng import random_memory_bytes

        mem = DeviceMemory(RADEON_5870)
        need = random_memory_bytes(n_voxels=205_082)
        with pytest.raises(DeviceError):
            mem.alloc(DeviceBuffer("pre-generated randoms", need))


class TestTimeline:
    def test_totals_per_kind(self):
        tl = Timeline()
        tl.add("transfer", "up", 1.0)
        tl.add("kernel", "seg0", 2.0)
        tl.add("reduction", "compact0", 0.5)
        tl.add("kernel", "seg1", 1.5)
        assert tl.totals() == {"kernel": 3.5, "transfer": 1.0, "reduction": 0.5}
        assert tl.serial_end() == pytest.approx(5.0)

    def test_unknown_kind_rejected(self):
        tl = Timeline()
        with pytest.raises(DeviceError):
            tl.add("compute", "x", 1.0)
        with pytest.raises(DeviceError):
            tl.total("compute")

    def test_negative_duration_rejected(self):
        with pytest.raises(DeviceError):
            Timeline().add("kernel", "x", -1.0)

    def test_overlap_two_streams(self):
        # Stream 0: kernel 2 then reduction 1; stream 1 the same.
        # Serial = 6; overlapped: device runs k0 then k1; host reductions
        # overlap the other stream's kernel.
        tl = Timeline()
        tl.add("kernel", "k0", 2.0, stream=0)
        tl.add("kernel", "k1", 2.0, stream=1)
        tl.add("reduction", "r0", 1.0, stream=0)
        tl.add("reduction", "r1", 1.0, stream=1)
        assert tl.serial_end() == pytest.approx(6.0)
        assert tl.overlapped_end() == pytest.approx(5.0)
        assert tl.overlap_saving() == pytest.approx(1.0)

    def test_same_stream_never_overlaps(self):
        tl = Timeline()
        tl.add("kernel", "k", 2.0, stream=0)
        tl.add("reduction", "r", 1.0, stream=0)
        assert tl.overlapped_end() == pytest.approx(3.0)

    def test_resource_serializes_across_streams(self):
        tl = Timeline()
        tl.add("kernel", "k0", 2.0, stream=0)
        tl.add("kernel", "k1", 2.0, stream=1)
        assert tl.overlapped_end() == pytest.approx(4.0)

    def test_merge_and_summary(self):
        a, b = Timeline(), Timeline()
        a.add("kernel", "k", 1.0)
        b.add("transfer", "t", 2.0)
        a.merge(b)
        assert a.total() == pytest.approx(3.0)
        s = a.summary()
        assert "kernel" in s and "serial" in s and "overlap" in s
