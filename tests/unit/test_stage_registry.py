"""The stage registry: mechanics, and the add-a-stage acceptance proof.

The tentpole claim is that the pipeline's shape is data: registering a
new ``StageDef`` must flow through stage hashing, store validation,
the workflow walk, the cache section, and the report with *zero edits*
to those layers.  ``TestToyStageEndToEnd`` proves it with a throwaway
stage registered at test time.
"""

import json

import numpy as np
import pytest

from repro.config import RunSpec, stage_hash
from repro.config.stages import (
    StageDef,
    get_stage,
    register_stage,
    resolve_stage_ref,
    stage_defs,
    stage_names,
    unregister_stage,
)
from repro.errors import ConfigurationError


class TestRegistryMechanics:
    def test_builtin_stages_in_topo_order(self):
        assert stage_names() == ("sampling", "tracking", "connectome")
        for sdef in stage_defs():
            for up in sdef.upstream:
                assert stage_names().index(up) < stage_names().index(sdef.name)

    def test_stages_attribute_is_live(self):
        from repro.config import STAGES
        from repro.config import stages as stages_mod

        assert tuple(STAGES) == stage_names()
        assert tuple(stages_mod.STAGES) == stage_names()

    def test_get_stage_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown stage"):
            get_stage("nope")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_stage(StageDef(name="sampling"))

    def test_unknown_upstream_raises(self):
        with pytest.raises(ConfigurationError, match="upstream"):
            register_stage(StageDef(name="x", upstream=("nope",)))

    def test_unregister_refuses_while_depended_on(self):
        register_stage(StageDef(name="tmp_a"))
        try:
            register_stage(StageDef(name="tmp_b", upstream=("tmp_a",)))
            try:
                with pytest.raises(ConfigurationError, match="upstream"):
                    unregister_stage("tmp_a")
            finally:
                unregister_stage("tmp_b")
        finally:
            unregister_stage("tmp_a")
        assert "tmp_a" not in stage_names()

    def test_resolve_stage_ref(self):
        fn = resolve_stage_ref("repro.pipeline.runners:run_sampling_stage")
        from repro.pipeline.runners import run_sampling_stage

        assert fn is run_sampling_stage
        sentinel = object()
        assert resolve_stage_ref(sentinel) is sentinel
        with pytest.raises(ConfigurationError):
            resolve_stage_ref("repro.no_such_module:thing")
        with pytest.raises(ConfigurationError):
            resolve_stage_ref("repro.config.stages:no_such_attr")

    def test_builtin_runners_and_shards_resolve(self):
        for sdef in stage_defs():
            assert callable(sdef.resolve_runner())
            if sdef.shard is not None:
                assert sdef.resolve_shard().stage == sdef.name


def _toy_runner(ctx):
    """A registry-registered stage: count stage-2 seeds, memoized."""
    from repro.pipeline import StageOutcome, run_memoized

    pt = ctx.outcomes["tracking"].result

    def compute():
        return {"n_seeds": int(pt.seeds.shape[0])}

    if ctx.store is None:
        return StageOutcome(stage="toy", result=compute())
    key = stage_hash(
        ctx.doc, "toy", inputs={"n_seeds": int(pt.seeds.shape[0])}
    )
    result, hit, _entry = run_memoized(
        ctx.store,
        "toy",
        key,
        compute=compute,
        serialize=lambda d, r: (d / "toy.json").write_text(json.dumps(r)),
        rehydrate=lambda e: json.loads(e.file("toy.json").read_text()),
        meta={"kind": "toy"},
        use_cache=ctx.use_cache,
    )
    return StageOutcome(stage="toy", result=result, key=key, hit=hit)


@pytest.fixture
def toy_stage():
    sdef = register_stage(
        StageDef(
            name="toy",
            upstream=("tracking",),
            spec_sections=("sampling", "tracking"),
            runner=_toy_runner,
            artifact_files=("toy.json", "telemetry.json"),
        )
    )
    try:
        yield sdef
    finally:
        unregister_stage("toy")


@pytest.fixture(scope="module")
def tiny_phantom():
    from repro.data import (
        make_gradient_table,
        rasterize_bundles,
        straight_bundle,
        synthesize_dwi,
    )
    from repro.data.phantoms import Phantom

    shape = (8, 5, 5)
    b = straight_bundle([1, 2, 2], [6, 2, 2], radius=1.2, weight=0.6)
    field = rasterize_bundles(shape, [b], mask=np.ones(shape, bool))
    gtab = make_gradient_table(n_directions=12, n_b0=1)
    dwi = synthesize_dwi(field, gtab, s0=1000.0, snr=50.0, seed=0)
    ph = Phantom(dwi=dwi, gtab=gtab, truth=field, name="tiny")
    return ph, field.f[..., 0] > 0


TOY_SPEC = {
    "sampling": {"n_burnin": 20, "n_samples": 2, "sample_interval": 1},
    "tracking": {"max_steps": 10},
}


class TestToyStageEndToEnd:
    """A registered stage flows through every layer with zero edits."""

    def test_hash_store_workflow_report(self, toy_stage, tiny_phantom, tmp_path):
        from repro.pipeline import run_workflow
        from repro.store import ArtifactStore

        ph, mask = tiny_phantom
        store = ArtifactStore(tmp_path / "store")
        doc = dict(TOY_SPEC)
        spec = RunSpec.from_dict(doc)

        # The hash layer serves the unmodified stage_hash for the toy
        # stage's declared subtree.
        key = stage_hash(doc, "toy")
        assert key.startswith("sha256:")
        assert stage_hash(doc, "toy") == key
        assert stage_hash(
            {**doc, "runtime": {"n_workers": 4}}, "toy"
        ) == key  # execution policy stays excluded

        # The workflow walk runs it, the store accepts its entries, and
        # the cache section carries its flag — all registry-driven.
        res = run_workflow(ph, spec=spec, store=store, fit_mask=mask)
        assert "toy" in res.outcomes
        assert res.outcomes["toy"].result == {
            "n_seeds": res.probtrack.seeds.shape[0]
        }
        assert res.cache["toy_hit"] is False
        assert "toy" in res.cache["stage_keys"]

        # ls()/verify() walk the registry too.
        entries = [e for e in store.ls() if e["stage"] == "toy"]
        assert len(entries) == 1
        assert entries[0]["meta"] == {"kind": "toy"}
        assert "toy.json" in entries[0]["files"]
        report = store.verify()
        assert report["corrupt"] == []
        assert report["checked"] == 3  # sampling + tracking + toy

        # report() derives its artifact-store block from the registry.
        assert any(
            line.strip().startswith("toy") and line.strip().endswith("miss")
            for line in res.report().splitlines()
        )

        # Warm run: served from the store.
        res2 = run_workflow(ph, spec=spec, store=store, fit_mask=mask)
        assert res2.cache["toy_hit"] is True
        assert res2.outcomes["toy"].result == res.outcomes["toy"].result
        assert any(
            line.strip().startswith("toy") and line.strip().endswith("hit")
            for line in res2.report().splitlines()
        )

    def test_storeless_walk_includes_toy(self, toy_stage, tiny_phantom):
        from repro.pipeline import run_workflow

        ph, mask = tiny_phantom
        res = run_workflow(
            ph, spec=RunSpec.from_dict(dict(TOY_SPEC)), fit_mask=mask
        )
        assert res.cache is None
        assert res.outcomes["toy"].result == {
            "n_seeds": res.probtrack.seeds.shape[0]
        }

    def test_unregistered_stage_entries_are_rejected(self, tiny_phantom):
        # Without the registration, the store refuses the stage name:
        # the registry is the single source of truth.
        from repro.errors import IOFormatError
        from repro.store import ArtifactStore
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            store = ArtifactStore(d)
            with pytest.raises(IOFormatError, match="unknown store stage"):
                store.lookup("toy", "sha256:" + "0" * 64)
