"""Property-based invariants across the tracking pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import rasterize_bundles, straight_bundle
from repro.models.fields import FiberField
from repro.tracking import (
    BatchTracker,
    ConnectivityAccumulator,
    TerminationCriteria,
    track_streamline,
)


def bent_field(bend_deg: float, shape=(30, 12, 6)):
    """Two straight segments meeting at `bend_deg` halfway along x."""
    nx = shape[0]
    mid = nx // 2
    f = np.zeros(shape + (1,))
    f[..., 0] = 0.6
    dirs = np.zeros(shape + (1, 3))
    dirs[:mid, ..., 0, 0] = 1.0
    rad = np.deg2rad(bend_deg)
    dirs[mid:, ..., 0, 0] = np.cos(rad)
    dirs[mid:, ..., 0, 1] = np.sin(rad)
    return FiberField(f=f, directions=dirs, mask=np.ones(shape, bool))


class TestTerminationMonotonicity:
    @given(
        bend=st.floats(5.0, 85.0),
        tight=st.floats(0.5, 0.99),
    )
    @settings(max_examples=30, deadline=None)
    def test_tighter_angle_threshold_never_lengthens(self, bend, tight):
        # Fibers tracked with a stricter curvature limit are never longer.
        field = bent_field(bend)
        loose_crit = TerminationCriteria(
            max_steps=200, min_dot=0.1, step_length=0.5
        )
        tight_crit = TerminationCriteria(
            max_steps=200, min_dot=tight, step_length=0.5
        )
        seed = np.array([2.0, 6.0, 3.0])
        heading = np.array([1.0, 0.0, 0.0])
        loose = track_streamline(field, seed, heading, loose_crit,
                                 interpolation="nearest")
        strict = track_streamline(field, seed, heading, tight_crit,
                                  interpolation="nearest")
        assert strict.n_steps <= loose.n_steps

    @given(budget=st.integers(1, 150))
    @settings(max_examples=30, deadline=None)
    def test_budget_monotone(self, budget):
        field = bent_field(0.0)
        small = TerminationCriteria(max_steps=budget, min_dot=0.8, step_length=0.5)
        big = TerminationCriteria(max_steps=budget + 50, min_dot=0.8, step_length=0.5)
        seed = np.array([1.0, 6.0, 3.0])
        h = np.array([1.0, 0.0, 0.0])
        a = track_streamline(field, seed, h, small)
        b = track_streamline(field, seed, h, big)
        assert a.n_steps <= b.n_steps
        assert a.n_steps <= budget

    @given(bend=st.floats(0.0, 80.0))
    @settings(max_examples=25, deadline=None)
    def test_bend_vs_threshold_decides_passage(self, bend):
        # Passing the bend requires cos(bend) >= min_dot (nearest-neighbor
        # geometry makes the turn a single discrete event).
        field = bent_field(bend)
        min_dot = 0.8
        crit = TerminationCriteria(
            max_steps=300, min_dot=min_dot, step_length=0.5
        )
        seed = np.array([2.0, 6.0, 3.0])
        line = track_streamline(
            field, seed, np.array([1.0, 0.0, 0.0]), crit,
            interpolation="nearest",
        )
        crossed = line.points[:, 0].max() > 16.0
        expect_cross = np.cos(np.deg2rad(bend)) >= min_dot + 1e-9
        if abs(np.cos(np.deg2rad(bend)) - min_dot) > 0.02:  # away from the edge
            assert crossed == expect_cross


class TestConnectivityInvariants:
    @given(
        n_seeds=st.integers(1, 6),
        n_samples=st.integers(1, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30)
    def test_probabilities_bounded_and_counts_additive(
        self, n_seeds, n_samples, seed
    ):
        rng = np.random.default_rng(seed)
        acc = ConnectivityAccumulator(n_seeds, 50)
        for _ in range(n_samples):
            acc.begin_sample()
            k = rng.integers(0, 30)
            acc.visit(
                rng.integers(0, n_seeds, size=k),
                rng.integers(0, 50, size=k),
            )
            acc.end_sample()
        p = acc.probability()
        assert p.shape == (n_seeds, 50)
        if p.nnz:
            assert p.data.min() > 0
            assert p.data.max() <= 1.0
        assert acc.counts.max() <= n_samples

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20)
    def test_within_sample_dedup(self, seed):
        rng = np.random.default_rng(seed)
        acc = ConnectivityAccumulator(2, 10)
        acc.begin_sample()
        pairs_seed = rng.integers(0, 2, size=40)
        pairs_vox = rng.integers(0, 10, size=40)
        acc.visit(pairs_seed, pairs_vox)
        acc.visit(pairs_seed, pairs_vox)  # exact duplicates
        acc.end_sample()
        assert acc.counts.max() <= 1


class TestRasterizeTrackConsistency:
    @given(
        radius=st.floats(1.2, 3.0),
        weight=st.floats(0.3, 0.9),
    )
    @settings(max_examples=15, deadline=None)
    def test_straight_bundle_supports_full_traversal(self, radius, weight):
        shape = (24, 10, 10)
        b = straight_bundle(
            [2, 5, 5], [21, 5, 5], radius=radius, weight=weight
        )
        field = rasterize_bundles(shape, [b], mask=np.ones(shape, bool))
        crit = TerminationCriteria(max_steps=400, min_dot=0.8, step_length=0.5)
        state = BatchTracker(field, crit).run_to_completion(
            np.array([[3.0, 5.0, 5.0]]), np.array([[1.0, 0.0, 0.0]])
        )
        # The tracker must traverse most of the painted bundle.
        assert state.positions[0, 0] > 17.0
