"""Property-based TrackVis ``.trk`` round-trip guarantees.

The connectome stage and both tracking CLIs export geometry through
:func:`repro.io.write_trk`; these properties pin the round-trip
contract downstream viewers rely on: streamline *count* and *order*,
per-line *lengths*, header metadata, and point coordinates to float32
precision — for any input dtype the pipeline produces.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import read_trk, write_trk

voxel_sizes = st.tuples(
    st.floats(0.25, 5.0), st.floats(0.25, 5.0), st.floats(0.25, 5.0)
)


def _random_lines(rng, n_lines, max_pts, dtype, span=60.0):
    lines = []
    for _ in range(n_lines):
        n = int(rng.integers(1, max_pts + 1))
        pts = rng.uniform(0.0, span, size=(n, 3))
        if np.issubdtype(np.dtype(dtype), np.integer):
            pts = np.floor(pts)
        lines.append(pts.astype(dtype))
    return lines


class TestTrkRoundTrip:
    @given(
        n_lines=st.integers(0, 12),
        max_pts=st.integers(1, 64),
        seed=st.integers(0, 2**31 - 1),
        vs=voxel_sizes,
    )
    @settings(max_examples=40, deadline=None)
    def test_counts_and_lengths_survive(
        self, tmp_path_factory, n_lines, max_pts, seed, vs
    ):
        tmp = tmp_path_factory.mktemp("trk")
        rng = np.random.default_rng(seed)
        lines = _random_lines(rng, n_lines, max_pts, np.float64)
        path = tmp / "t.trk"
        write_trk(path, lines, voxel_sizes=vs)
        back, meta = read_trk(path)
        assert meta["n_count"] == n_lines
        assert len(back) == n_lines
        # Per-line point counts survive exactly, in order.
        assert [b.shape for b in back] == [(a.shape[0], 3) for a in lines]

    @given(
        dtype=st.sampled_from([np.float32, np.float64, np.int16, np.int32]),
        seed=st.integers(0, 2**31 - 1),
        vs=voxel_sizes,
    )
    @settings(max_examples=40, deadline=None)
    def test_any_input_dtype_round_trips_to_f32_precision(
        self, tmp_path_factory, dtype, seed, vs
    ):
        tmp = tmp_path_factory.mktemp("trk")
        rng = np.random.default_rng(seed)
        lines = _random_lines(rng, 5, 30, dtype)
        path = tmp / "t.trk"
        write_trk(path, lines, voxel_sizes=vs)
        back, _ = read_trk(path)
        # The format stores float32 voxel-mm; coming back through the
        # stored voxel sizes costs at most f32 rounding of pts * vs.
        for a, b in zip(lines, back):
            assert b.dtype == np.float64
            scaled = np.asarray(a, dtype=np.float64) * np.asarray(vs)
            tol = np.abs(scaled) * 1e-6 + 1e-5
            np.testing.assert_allclose(
                b * np.asarray(vs), scaled, atol=float(tol.max())
            )

    @given(
        seed=st.integers(0, 2**31 - 1),
        vs=voxel_sizes,
        dims=st.tuples(
            st.integers(1, 256), st.integers(1, 256), st.integers(1, 256)
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_header_metadata_round_trips(
        self, tmp_path_factory, seed, vs, dims
    ):
        tmp = tmp_path_factory.mktemp("trk")
        rng = np.random.default_rng(seed)
        lines = _random_lines(rng, 3, 10, np.float64)
        path = tmp / "t.trk"
        write_trk(path, lines, voxel_sizes=vs, dims=dims)
        _, meta = read_trk(path)
        assert meta["dims"] == dims
        assert meta["n_scalars"] == 0
        assert meta["n_properties"] == 0
        np.testing.assert_allclose(meta["voxel_sizes"], vs, rtol=1e-6)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_write_is_deterministic(self, tmp_path_factory, seed):
        tmp = tmp_path_factory.mktemp("trk")
        rng = np.random.default_rng(seed)
        lines = _random_lines(rng, 4, 20, np.float64)
        p1, p2 = tmp / "a.trk", tmp / "b.trk"
        write_trk(p1, lines, voxel_sizes=(1.0, 1.5, 2.0))
        write_trk(p2, lines, voxel_sizes=(1.0, 1.5, 2.0))
        assert p1.read_bytes() == p2.read_bytes()
