"""Chaos tests for sharded bedpost: recovery stays bit-identical.

Reuses the PR-2 fault grammar (``kind:target[:attempt]``, with ``sN``
targets addressing *global serial-block indices* for this stage) against
the voxel-block shards: block crashes, hangs killed by the watchdog,
corrupted payloads caught by validation, re-shard isolation of a
poisoned block, and pool exhaustion completing via the in-parent serial
fallback.  After every recovery the posterior samples and deterministic
counters must match the serial run bit for bit.
"""

import json

import numpy as np
import pytest

from repro.data import dataset1
from repro.errors import PoolExhaustedError
from repro.mcmc import MCMCConfig
from repro.pipeline import BedpostConfig, bedpost
from repro.runtime.faults import FaultPlan
from repro.telemetry import MetricsRegistry, use_registry

pytestmark = pytest.mark.chaos

FAST = MCMCConfig(n_burnin=12, n_samples=3, sample_interval=2, adapt_every=7)
BLOCK_VOXELS = 11


@pytest.fixture(scope="module")
def phantom():
    return dataset1(scale=0.15, snr=40.0)


def run(phantom, n_workers, plan=None, timeout=None, fallback=True,
        max_retries=2):
    cfg = BedpostConfig(
        mcmc=FAST,
        block_voxels=BLOCK_VOXELS,
        n_workers=n_workers,
        fault_plan=plan,
        shard_timeout_s=timeout,
        fallback_to_serial=fallback,
        max_retries=max_retries,
    )
    registry = MetricsRegistry()
    with use_registry(registry):
        result = bedpost(phantom.dwi, phantom.gtab, phantom.mask, cfg)
    snap = registry.snapshot()
    det = json.dumps(
        {"counters": snap["counters"], "histograms": snap["histograms"]},
        sort_keys=True,
    )
    return result, det


_serial_cache = {}


def serial_reference(phantom):
    if "ref" not in _serial_cache:
        _serial_cache["ref"] = run(phantom, 1)
    return _serial_cache["ref"]


def assert_bit_identical(serial, recovered):
    s_result, s_det = serial
    r_result, r_det = recovered
    np.testing.assert_array_equal(s_result.samples, r_result.samples)
    assert s_result.acceptance_history == r_result.acceptance_history
    assert s_det == r_det


@pytest.mark.parametrize(
    "plan_text,n_failures",
    [
        ("crash:0", 1),
        ("corrupt:1", 1),
        ("crash:0,corrupt:1", 2),
        ("crash:1,crash:1:1", 2),  # two consecutive attempts of one shard
    ],
)
def test_crash_corrupt_plans_recover_bit_identical(phantom, plan_text,
                                                   n_failures):
    serial = serial_reference(phantom)
    recovered = run(phantom, 2, plan=FaultPlan.parse(plan_text))
    assert_bit_identical(serial, recovered)
    sup = recovered[0].supervision
    assert sup.n_failures == n_failures
    assert sup.n_retries == n_failures and not sup.fallbacks


def test_hang_fault_times_out_and_recovers(phantom):
    plan = FaultPlan.parse("hang:0", hang_seconds=30.0)
    serial = serial_reference(phantom)
    recovered = run(phantom, 2, plan=plan, timeout=20.0)
    assert_bit_identical(serial, recovered)
    assert recovered[0].supervision.failure_counts() == {"timeout": 1}


def test_block_targeted_fault_is_isolated_by_resharding(phantom):
    # Global block 2's owner crashes on every pooled attempt; re-sharding
    # must confine the poison to the single-block subtask, which then
    # completes through the serial fallback.
    serial = serial_reference(phantom)
    n_blocks = -(-serial[0].n_voxels // BLOCK_VOXELS)
    assert n_blocks >= 4, "fixture must give several blocks"
    recovered = run(phantom, 2, plan=FaultPlan.parse("crash:s2:*"))
    assert_bit_identical(serial, recovered)
    sup = recovered[0].supervision
    assert sup.reshards == [0]  # block 2 lives in the first of 2 shards
    assert sup.fallbacks == [0]


def test_pool_exhaustion_completes_via_serial_fallback(phantom):
    plan = FaultPlan.parse("crash:0:*,crash:1:*")
    serial = serial_reference(phantom)
    recovered = run(phantom, 2, plan=plan)
    assert_bit_identical(serial, recovered)
    sup = recovered[0].supervision
    assert sup.fallbacks, "expected at least one serial fallback"
    assert sup.reshards, "multi-block shards re-shard before falling back"


def test_exhaustion_raises_when_fallback_disabled(phantom):
    plan = FaultPlan.parse("crash:0:*,crash:1:*")
    with pytest.raises(PoolExhaustedError):
        run(phantom, 2, plan=plan, fallback=False, max_retries=1)
