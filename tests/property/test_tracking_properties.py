"""Property-based tests for tracking, segmentation, and the GPU model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gpu.occupancy import rectangle_area, utilization, wasted_lane_iterations
from repro.gpu.simulator import wavefront_times
from repro.analysis.projection import segment_executed
from repro.models.fields import FiberField
from repro.tracking import (
    BatchTracker,
    IncreasingStrategy,
    SingleSegmentStrategy,
    TerminationCriteria,
    UniformStrategy,
    increasing_intervals,
    track_streamline,
)

lengths_arrays = hnp.arrays(
    np.int64,
    st.integers(1, 200),
    elements=st.integers(0, 500),
)


class TestSegmentationProperties:
    @given(max_steps=st.integers(1, 5000), k=st.integers(1, 500))
    def test_uniform_covers_exactly(self, max_steps, k):
        segs = UniformStrategy(k).segments(max_steps)
        assert sum(segs) == max_steps
        assert all(1 <= s <= k for s in segs)

    @given(max_steps=st.integers(1, 5000))
    def test_single_segment_exact(self, max_steps):
        assert SingleSegmentStrategy().segments(max_steps) == [max_steps]

    @given(
        max_steps=st.integers(1, 5000),
        array=st.lists(st.integers(1, 300), min_size=1, max_size=20),
    )
    def test_custom_array_covers_exactly(self, max_steps, array):
        segs = IncreasingStrategy(array).segments(max_steps)
        assert sum(segs) == max_steps
        assert all(s >= 1 for s in segs)

    @given(
        max_steps=st.integers(1, 5000),
        first=st.integers(1, 10),
        ratio=st.floats(1.2, 5.0),
    )
    def test_generated_ladder_covers_exactly(self, max_steps, first, ratio):
        segs = increasing_intervals(max_steps, first=first, ratio=ratio)
        assert sum(segs) == max_steps


class TestGpuModelProperties:
    @given(lengths=lengths_arrays, width=st.sampled_from([1, 2, 16, 32, 64]))
    def test_waste_nonnegative_and_utilization_bounded(self, lengths, width):
        waste = wasted_lane_iterations(lengths, width)
        assert waste >= -1e-9
        u = utilization(lengths, width)
        assert 0.0 <= u <= 1.0 + 1e-12

    @given(lengths=lengths_arrays)
    def test_width_one_never_wastes(self, lengths):
        assert wasted_lane_iterations(lengths, 1) == 0.0
        assert utilization(lengths, 1) == 1.0 or lengths.sum() == 0

    @given(lengths=lengths_arrays, width=st.sampled_from([2, 8, 64]))
    def test_wavefront_times_dominate_members(self, lengths, width):
        waves = wavefront_times(lengths, width)
        n_waves = -(-lengths.size // width)
        assert waves.size == n_waves
        for w in range(n_waves):
            group = lengths[w * width : (w + 1) * width]
            assert waves[w] == group.max()

    @given(
        lengths=hnp.arrays(
            np.float64, st.integers(1, 150), elements=st.floats(0, 300)
        ),
        k=st.integers(1, 100),
    )
    def test_paid_area_at_least_useful(self, lengths, k):
        max_steps = int(lengths.max()) + 1
        useful, paid, _ = rectangle_area(lengths, UniformStrategy(k).segments(max_steps))
        assert paid >= useful - 1e-9

    @given(lengths=lengths_arrays, k=st.integers(1, 50))
    def test_segment_executed_conserves_work(self, lengths, k):
        # Total executed iterations (minus the stop-decision iterations)
        # must equal the total useful steps.
        max_steps = int(lengths.max()) + 1 if lengths.size else 1
        segs = UniformStrategy(k).segments(max_steps)
        execd = segment_executed(lengths, segs)
        total = sum(float(e.sum()) for e in execd)
        useful = float(np.minimum(lengths, max_steps).sum())
        # Each thread contributes at most one extra decision iteration
        # per... exactly one stop iteration unless its length is an exact
        # multiple boundary equal to the budget.
        assert useful <= total <= useful + lengths.size


class TestTrackerProperties:
    def make_field(self, nx=24):
        shape = (nx, 6, 6)
        f = np.zeros(shape + (1,))
        f[..., 0] = 0.6
        d = np.zeros(shape + (1, 3))
        d[..., 0, 0] = 1.0
        return FiberField(f=f, directions=d, mask=np.ones(shape, bool))

    @given(
        step=st.floats(0.1, 1.0),
        seed_x=st.floats(1.0, 20.0),
        max_steps=st.integers(1, 300),
    )
    @settings(max_examples=40, deadline=None)
    def test_scalar_batch_agree_everywhere(self, step, seed_x, max_steps):
        field = self.make_field()
        crit = TerminationCriteria(
            max_steps=max_steps, min_dot=0.8, step_length=step
        )
        seed = np.array([seed_x, 3.0, 3.0])
        heading = np.array([1.0, 0.0, 0.0])
        ref = track_streamline(field, seed, heading, crit)
        state = BatchTracker(field, crit).run_to_completion(
            seed[None], heading[None]
        )
        assert state.steps[0] == ref.n_steps
        assert state.reason[0] == ref.reason

    @given(
        step=st.floats(0.1, 0.9),
        seed_x=st.floats(1.0, 20.0),
        chunks=st.lists(st.integers(1, 50), min_size=1, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_segmentation_invariance(self, step, seed_x, chunks):
        # Splitting execution into arbitrary segments never changes the
        # result -- the correctness invariant behind the paper's whole
        # strategy space.
        field = self.make_field()
        crit = TerminationCriteria(max_steps=120, min_dot=0.8, step_length=step)
        seed = np.array([[seed_x, 3.0, 3.0]])
        heading = np.array([[1.0, 0.0, 0.0]])
        tracker = BatchTracker(field, crit)
        mono = tracker.run_to_completion(seed, heading)
        state = tracker.init_state(seed, heading)
        budget = 120
        for c in chunks:
            take = min(c, budget)
            tracker.run_segment(state, take)
            budget -= take
            if budget <= 0:
                break
        tracker.run_segment(state, budget if budget > 0 else 0)
        # Finish any remainder.
        while state.n_active and state.steps.max() < 120:
            tracker.run_segment(state, 10)
        assert state.steps[0] == mono.steps[0]

    @given(step=st.floats(0.1, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_steps_never_exceed_budget(self, step):
        field = self.make_field(nx=200)
        crit = TerminationCriteria(max_steps=50, min_dot=0.8, step_length=step)
        state = BatchTracker(field, crit).run_to_completion(
            np.array([[1.0, 3.0, 3.0]]), np.array([[1.0, 0.0, 0.0]])
        )
        assert state.steps[0] <= 50
