"""Property-based tests for diffusion models, priors, and the posterior."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import GradientTable
from repro.models import (
    BallStickModel,
    MultiFiberModel,
    MultiFiberPriors,
    TensorModel,
    gaussian_loglike,
)
from repro.utils.geometry import fibonacci_sphere


def make_gtab(n_dwi=16, n_b0=2, b=1000.0):
    bvals = np.concatenate([np.zeros(n_b0), np.full(n_dwi, b)])
    bvecs = np.concatenate([np.zeros((n_b0, 3)), fibonacci_sphere(n_dwi)])
    return GradientTable(bvals, bvecs)


GTAB = make_gtab()

voxel_params = st.fixed_dictionaries(
    {
        "s0": st.floats(1.0, 1e4),
        "d": st.floats(1e-5, 5e-3),
        "f1": st.floats(0.0, 0.6),
        "f2": st.floats(0.0, 0.35),
        "theta1": st.floats(0.05, np.pi - 0.05),
        "theta2": st.floats(0.05, np.pi - 0.05),
        "phi1": st.floats(0.0, 2 * np.pi),
        "phi2": st.floats(0.0, 2 * np.pi),
    }
)


class TestSignalProperties:
    @given(p=voxel_params)
    @settings(max_examples=60)
    def test_signal_bounded_by_s0(self, p):
        mu = MultiFiberModel(2).predict(
            GTAB,
            s0=np.array([p["s0"]]),
            d=np.array([p["d"]]),
            f=np.array([[p["f1"], p["f2"]]]),
            theta=np.array([[p["theta1"], p["theta2"]]]),
            phi=np.array([[p["phi1"], p["phi2"]]]),
        )
        assert np.all(mu > 0.0)
        assert np.all(mu <= p["s0"] * (1 + 1e-12))
        # b=0 columns equal S0 exactly.
        np.testing.assert_allclose(mu[0, GTAB.b0_mask], p["s0"], rtol=1e-12)

    @given(p=voxel_params)
    @settings(max_examples=60)
    def test_signal_monotone_in_diffusivity(self, p):
        def predict(d):
            return MultiFiberModel(2).predict(
                GTAB,
                s0=np.array([p["s0"]]),
                d=np.array([d]),
                f=np.array([[p["f1"], p["f2"]]]),
                theta=np.array([[p["theta1"], p["theta2"]]]),
                phi=np.array([[p["phi1"], p["phi2"]]]),
            )

        lo = predict(p["d"])
        hi = predict(p["d"] * 2.0)
        dw = ~GTAB.b0_mask
        assert np.all(hi[0, dw] <= lo[0, dw] + 1e-12)

    @given(
        s0=st.floats(1.0, 1e4),
        d=st.floats(1e-5, 5e-3),
        f=st.floats(0.0, 0.9),
        theta=st.floats(0.05, np.pi - 0.05),
        phi=st.floats(0.0, 2 * np.pi),
    )
    @settings(max_examples=60)
    def test_ball_stick_between_ball_and_b0(self, s0, d, f, theta, phi):
        mu = BallStickModel().predict(
            GTAB,
            s0=np.array([s0]),
            d=np.array([d]),
            f=np.array([f]),
            theta=np.array([theta]),
            phi=np.array([phi]),
        )
        dw = ~GTAB.b0_mask
        ball = s0 * np.exp(-GTAB.bvals[dw] * d)
        # The stick attenuates at most as much as the ball along any
        # gradient (its exponent is scaled by a squared cosine <= 1).
        assert np.all(mu[0, dw] >= ball - 1e-9)
        assert np.all(mu[0, dw] <= s0 + 1e-9)

    @given(
        s0=st.floats(10.0, 1e3),
        d=st.floats(1e-4, 3e-3),
    )
    @settings(max_examples=30)
    def test_tensor_fit_round_trip(self, s0, d):
        # Isotropic tensors of any physical scale are recovered exactly
        # from noiseless data.
        tensors = (np.eye(3) * d)[None]
        mu = TensorModel().predict(GTAB, s0=np.array([s0]), tensors=tensors)
        fit = TensorModel().fit(GTAB, mu)
        np.testing.assert_allclose(fit.tensors, tensors, atol=d * 1e-6)
        np.testing.assert_allclose(fit.s0, [s0], rtol=1e-8)


class TestPosteriorProperties:
    @given(p=voxel_params, sigma=st.floats(0.1, 100.0))
    @settings(max_examples=60)
    def test_prior_finite_iff_in_support(self, p, sigma):
        priors = MultiFiberPriors()
        lp = priors.log_prior(
            s0=np.array([p["s0"]]),
            d=np.array([p["d"]]),
            sigma=np.array([sigma]),
            f=np.array([[p["f1"], p["f2"]]]),
            theta=np.array([[p["theta1"], p["theta2"]]]),
            phi=np.array([[p["phi1"], p["phi2"]]]),
        )
        in_support = (
            0 < p["s0"] <= priors.s0_max
            and 0 < p["d"] <= priors.d_max
            and p["f1"] >= 0
            and p["f2"] >= 0
            and p["f1"] + p["f2"] <= 1.0
        )
        assert np.isfinite(lp[0]) == in_support

    @given(
        scale=st.floats(0.1, 10.0),
        n=st.integers(1, 5),
        m=st.integers(1, 20),
    )
    @settings(max_examples=40)
    def test_loglike_maximized_at_mu(self, scale, n, m):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(n, m)) * scale
        sigma = np.full(n, scale)
        at_data = gaussian_loglike(data, data, sigma)
        off = gaussian_loglike(data, data + scale, sigma)
        assert np.all(at_data >= off)

    @given(factor=st.floats(1.1, 10.0))
    @settings(max_examples=40)
    def test_loglike_scale_equivariance(self, factor):
        # Scaling data, mu and sigma together shifts the loglike by
        # -m*log(factor) exactly (change of variables).
        rng = np.random.default_rng(1)
        data = rng.normal(size=(3, 8))
        mu = rng.normal(size=(3, 8))
        sigma = np.array([0.5, 1.0, 2.0])
        base = gaussian_loglike(data, mu, sigma)
        scaled = gaussian_loglike(data * factor, mu * factor, sigma * factor)
        np.testing.assert_allclose(
            scaled, base - 8 * np.log(factor), rtol=1e-9, atol=1e-9
        )
