"""Bit-identity of the fused multi-sample engine.

The contract of ``tracking.engine = "fused"``: stacking every
shard-local sample into one lockstep batch changes *scheduling only* —
lengths, stop reasons, connectivity visit maps, and the deterministic
telemetry counters are **bit-identical** to the per-sample engine, for
any worker count, thread order, interpolation mode, bidirectional
setting, compact threshold, and array backend.  Each row's arithmetic
depends only on its own state and its own sample's field bytes, so the
stacked gather (``sample * n_vox + flat``) fetches exactly what the
per-sample gather would; these tests pin that argument down
empirically.
"""

import json

import numpy as np
import pytest

from repro.data import dataset1
from repro.models.fields import FiberField
from repro.telemetry import (
    MetricsRegistry,
    build_manifest,
    deterministic_sections,
    use_registry,
)
from repro.tracking import (
    ProbtrackConfig,
    TerminationCriteria,
    probabilistic_streamlining,
)
from repro.utils.geometry import normalize

N_SAMPLES = 5


@pytest.fixture(scope="module")
def fields():
    """Small pseudo-posterior sample volumes (perturbed ground truth)."""
    phantom = dataset1(scale=0.15, snr=40.0)
    truth = phantom.truth
    rng = np.random.default_rng(7)
    out = []
    for _ in range(N_SAMPLES):
        has_fiber = truth.f > 0
        noise = rng.normal(scale=0.15, size=truth.directions.shape)
        dirs = normalize(truth.directions + noise * has_fiber[..., None])
        out.append(
            FiberField(
                f=truth.f.copy(),
                directions=dirs * has_fiber[..., None],
                mask=truth.mask.copy(),
            )
        )
    return out


def run(fields, engine, n_workers=1, **kw):
    """One tracking run under a fresh registry -> (result, manifest)."""
    cfg = ProbtrackConfig(
        criteria=TerminationCriteria(max_steps=64, min_dot=0.8, step_length=0.2),
        engine=engine,
        n_workers=n_workers,
        **kw,
    )
    registry = MetricsRegistry()
    with use_registry(registry):
        result = probabilistic_streamlining(fields, config=cfg)
    return result, build_manifest(registry, meta={})


def assert_identical(a, b, *, counters=True):
    """Functional outputs and (optionally) deterministic counters match."""
    ra, ma = a
    rb, mb = b
    assert np.array_equal(ra.run.lengths, rb.run.lengths)
    assert np.array_equal(ra.run.reasons, rb.run.reasons)
    diff = ra.connectivity.probability() != rb.connectivity.probability()
    assert diff.nnz == 0
    if counters:
        da = deterministic_sections(ma)
        db = deterministic_sections(mb)
        # The fused engine's one *new* deterministic counter counts the
        # samples it fused; everything shared must match exactly.
        for d in (da, db):
            d["counters"].pop("tracking.fused_samples", None)
        assert json.dumps(da, sort_keys=True) == json.dumps(db, sort_keys=True)


@pytest.mark.parametrize(
    "order,bidirectional",
    [
        ("natural", False),
        ("sorted", False),
        ("natural", True),
        ("sorted", True),
    ],
)
def test_fused_matches_per_sample_for_any_worker_count(
    fields, order, bidirectional
):
    ref = run(fields, "per-sample", 1, order=order, bidirectional=bidirectional)
    for n_workers in (1, 2, 4):
        fused = run(
            fields, "fused", n_workers, order=order, bidirectional=bidirectional
        )
        assert_identical(ref, fused)


@pytest.mark.parametrize(
    "interpolation", ["trilinear", "nearest", "trilinear-reference"]
)
def test_fused_parity_across_interpolation_modes(fields, interpolation):
    ref = run(fields, "per-sample", 1, interpolation=interpolation)
    for n_workers in (1, 2):
        fused = run(fields, "fused", n_workers, interpolation=interpolation)
        assert_identical(ref, fused)


@pytest.mark.parametrize("threshold", [0.0, 0.5, 1.0])
def test_compact_threshold_never_changes_results(fields, threshold):
    """Adaptive in-segment compaction is pure scheduling: every
    threshold reproduces the per-sample engine bit for bit, and the
    adaptive relaunch count stays out of the deterministic section."""
    ref = run(fields, "per-sample", 1)
    fused = run(fields, "fused", 1, compact_threshold=threshold)
    assert_identical(ref, fused)
    det = deterministic_sections(fused[1])
    assert "tracking.compactions_adaptive" not in det["counters"]


def test_array_api_backend_is_bitwise_identical(fields):
    for engine in ("per-sample", "fused"):
        ref = run(fields, engine, 1, array_backend="numpy")
        alt = run(fields, engine, 1, array_backend="array-api")
        assert_identical(ref, alt)


def test_fused_counts_its_samples(fields):
    _, manifest = run(fields, "fused", 1)
    assert manifest["counters"]["tracking.fused_samples"] == N_SAMPLES
    _, manifest = run(fields, "fused", 1, bidirectional=True)
    # Bidirectional doubles threads, not samples.
    assert manifest["counters"]["tracking.fused_samples"] == N_SAMPLES
    _, manifest = run(fields, "per-sample", 1)
    assert "tracking.fused_samples" not in manifest["counters"]


def test_fused_deterministic_sections_worker_invariant(fields):
    """The fused engine keeps the telemetry worker-invariance contract
    on its own: sharding fuses different sample subsets, yet the
    deterministic section stays bit-identical."""
    base = None
    for n_workers in (1, 2, 4):
        _, manifest = run(fields, "fused", n_workers)
        det = json.dumps(deterministic_sections(manifest), sort_keys=True)
        if base is None:
            base = det
        else:
            assert det == base, f"n_workers={n_workers} drifted"


def test_single_sample_fused_degrades_cleanly(fields):
    ref = run(fields[:1], "per-sample", 1)
    fused = run(fields[:1], "fused", 1)
    assert_identical(ref, fused)
