"""Connectome-stage parity: workers, cache, faults, and stage reuse.

The stage's bit-identity contract mirrors the other two stages':

* the endpoint matrix is identical for any ``connectome_workers`` count
  (the seed-block decomposition is only *grouped* into shards);
* a warm store run serves the identical matrix;
* injected shard faults recover to the identical matrix;
* an atlas-only spec change reuses stages 1-2 (hits) and recomputes
  only the connectome (miss) — the sweep economics the stage hash
  exists to provide.
"""

import numpy as np
import pytest

from repro.config import RunSpec
from repro.models.fields import FiberField
from repro.pipeline.connectome import compute_connectome
from repro.runtime.faults import FaultPlan
from repro.tracking.criteria import TerminationCriteria


def _bent_field(shape=(12, 8, 8)):
    """Two-population field with enough structure to cross ROIs."""
    f = np.zeros(shape + (2,))
    f[..., 0] = 0.55
    f[..., 1] = 0.25
    d = np.zeros(shape + (2, 3))
    d[..., 0, 0] = 1.0  # along x
    d[..., 1, 1] = 1.0  # along y
    return FiberField(f=f, directions=d, mask=np.ones(shape, bool))


@pytest.fixture(scope="module")
def tracked_inputs():
    fields = [_bent_field(), _bent_field()]
    # 10 x 4 x 4 = 160 seeds -> three 64-seed blocks, so shard-level
    # fault specs like "corrupt:s2" (third global block) have a target.
    xs, ys, zs = np.meshgrid(
        np.arange(1.0, 11.0, 1.0),
        np.arange(1.0, 7.0, 1.5),
        np.arange(1.0, 7.0, 1.5),
        indexing="ij",
    )
    seeds = np.stack([xs, ys, zs], axis=-1).reshape(-1, 3)
    criteria = TerminationCriteria(max_steps=40, step_length=0.5)
    return fields, seeds, criteria


class TestWorkerParity:
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_matrix_bit_identical_across_worker_counts(
        self, tracked_inputs, n_workers
    ):
        fields, seeds, criteria = tracked_inputs
        serial = compute_connectome(
            fields, seeds, "octant", criteria=criteria, n_workers=1
        )
        sharded = compute_connectome(
            fields, seeds, "octant", criteria=criteria, n_workers=n_workers
        )
        np.testing.assert_array_equal(serial.counts, sharded.counts)
        assert serial.n_streamlines == sharded.n_streamlines
        assert serial.graph == sharded.graph
        assert len(serial.lines) == len(sharded.lines)
        for a, b in zip(serial.lines, sharded.lines):
            np.testing.assert_array_equal(a, b)

    def test_matrix_symmetric_and_consistent(self, tracked_inputs):
        fields, seeds, criteria = tracked_inputs
        res = compute_connectome(
            fields, seeds, "grid2", criteria=criteria, n_workers=2
        )
        np.testing.assert_array_equal(res.counts, res.counts.T)
        assert int(np.triu(res.counts).sum()) == res.n_streamlines
        # Every (sample, seed) streamline passes the default filter.
        assert res.n_streamlines == len(fields) * seeds.shape[0]


class TestFaultRecoveryParity:
    @pytest.mark.parametrize(
        "plan_text", ["crash:0", "crash:0,corrupt:1", "corrupt:s2"]
    )
    def test_injected_faults_recover_bit_identically(
        self, tracked_inputs, plan_text
    ):
        fields, seeds, criteria = tracked_inputs
        clean = compute_connectome(
            fields, seeds, "octant", criteria=criteria, n_workers=2
        )
        faulty = compute_connectome(
            fields,
            seeds,
            "octant",
            criteria=criteria,
            n_workers=2,
            fault_plan=FaultPlan.parse(plan_text),
        )
        np.testing.assert_array_equal(clean.counts, faulty.counts)
        assert faulty.supervision is not None
        assert faulty.supervision.n_failures >= 1


class TestStoreParity:
    @pytest.fixture(scope="class")
    def phantom(self):
        from repro.data import (
            make_gradient_table,
            rasterize_bundles,
            straight_bundle,
            synthesize_dwi,
        )
        from repro.data.phantoms import Phantom

        shape = (8, 5, 5)
        b = straight_bundle([1, 2, 2], [6, 2, 2], radius=1.2, weight=0.6)
        field = rasterize_bundles(shape, [b], mask=np.ones(shape, bool))
        gtab = make_gradient_table(n_directions=12, n_b0=1)
        dwi = synthesize_dwi(field, gtab, s0=1000.0, snr=50.0, seed=0)
        ph = Phantom(dwi=dwi, gtab=gtab, truth=field, name="tiny")
        return ph, field.f[..., 0] > 0

    def _spec(self, store, atlas, workers=1):
        return RunSpec.from_dict(
            {
                "sampling": {
                    "n_burnin": 20,
                    "n_samples": 2,
                    "sample_interval": 1,
                },
                "tracking": {"max_steps": 10},
                "connectome": {"atlas": atlas},
                "runtime": {"connectome_workers": workers},
                "telemetry": {"store": str(store)},
            }
        )

    def test_cold_warm_and_atlas_sweep(self, phantom, tmp_path_factory):
        from repro.pipeline import run_workflow

        ph, mask = phantom
        store = tmp_path_factory.mktemp("store")

        cold = run_workflow(ph, spec=self._spec(store, "octant"), fit_mask=mask)
        assert cold.cache["connectome_hit"] is False
        conn = cold.connectome
        assert conn is not None

        # Warm: every stage served, matrix bit-identical.
        warm = run_workflow(ph, spec=self._spec(store, "octant"), fit_mask=mask)
        assert warm.cache["sampling_hit"] is True
        assert warm.cache["tracking_hit"] is True
        assert warm.cache["connectome_hit"] is True
        np.testing.assert_array_equal(warm.connectome.counts, conn.counts)
        assert warm.connectome.graph == conn.graph

        # Worker count is execution policy: still a full hit.
        rewarmed = run_workflow(
            ph, spec=self._spec(store, "octant", workers=4), fit_mask=mask
        )
        assert rewarmed.cache["connectome_hit"] is True
        np.testing.assert_array_equal(rewarmed.connectome.counts, conn.counts)

        # Atlas-only change: stages 1-2 hit, connectome recomputes.
        sweep = run_workflow(
            ph, spec=self._spec(store, "slabs2"), fit_mask=mask
        )
        assert sweep.cache["sampling_hit"] is True
        assert sweep.cache["tracking_hit"] is True
        assert sweep.cache["connectome_hit"] is False
        assert sweep.connectome.atlas.name == "slabs2"

        # The store now holds one sampling, one tracking, and two
        # connectome entries — the sweep reused everything upstream.
        from repro.store import ArtifactStore

        by_stage = {}
        for e in ArtifactStore(store).ls():
            by_stage.setdefault(e["stage"], []).append(e)
        assert len(by_stage["sampling"]) == 1
        assert len(by_stage["tracking"]) == 1
        assert len(by_stage["connectome"]) == 2

    def test_atlas_none_skips_stage(self, phantom):
        from repro.pipeline import run_workflow

        ph, mask = phantom
        spec = RunSpec.from_dict(
            {
                "sampling": {
                    "n_burnin": 20,
                    "n_samples": 2,
                    "sample_interval": 1,
                },
                "tracking": {"max_steps": 10},
            }
        )
        res = run_workflow(ph, spec=spec, fit_mask=mask)
        assert res.connectome is None
        assert "connectome" not in res.outcomes
