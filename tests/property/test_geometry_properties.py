"""Property-based tests (hypothesis) for geometry and RNG invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.rng import HybridTaus, box_muller_pairs, seed_streams
from repro.utils.geometry import (
    angle_between,
    cartesian_to_spherical,
    normalize,
    rotation_between,
    rotation_matrix,
    spherical_to_cartesian,
)

finite_vec3 = hnp.arrays(
    np.float64,
    (3,),
    elements=st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
)

nonzero_vec3 = finite_vec3.filter(lambda v: np.linalg.norm(v) > 1e-6)


class TestGeometryProperties:
    @given(
        theta=st.floats(0.0, np.pi),
        phi=st.floats(0.0, 2 * np.pi, exclude_max=True),
    )
    def test_spherical_to_cartesian_is_unit(self, theta, phi):
        v = spherical_to_cartesian(theta, phi)
        assert abs(np.linalg.norm(v) - 1.0) < 1e-12

    @given(
        theta=st.floats(1e-3, np.pi - 1e-3),
        phi=st.floats(0.0, 2 * np.pi, exclude_max=True),
    )
    def test_round_trip_identity(self, theta, phi):
        t2, p2 = cartesian_to_spherical(spherical_to_cartesian(theta, phi))
        assert abs(t2 - theta) < 1e-9
        assert min(abs(p2 - phi), abs(p2 - phi + 2 * np.pi), abs(p2 - phi - 2 * np.pi)) < 1e-9

    @given(v=nonzero_vec3)
    def test_normalize_idempotent(self, v):
        n1 = normalize(v)
        n2 = normalize(n1)
        np.testing.assert_allclose(n1, n2, atol=1e-12)
        assert abs(np.linalg.norm(n1) - 1.0) < 1e-9

    @given(a=nonzero_vec3, b=nonzero_vec3)
    def test_angle_symmetry_and_range(self, a, b):
        ang_ab = float(angle_between(a, b))
        ang_ba = float(angle_between(b, a))
        assert abs(ang_ab - ang_ba) < 1e-9
        assert -1e-12 <= ang_ab <= np.pi + 1e-12
        axial = float(angle_between(a, b, axial=True))
        assert axial <= np.pi / 2 + 1e-12

    @given(axis=nonzero_vec3, angle=st.floats(-10.0, 10.0))
    def test_rotation_matrix_orthonormal(self, axis, angle):
        R = rotation_matrix(axis, angle)
        np.testing.assert_allclose(R @ R.T, np.eye(3), atol=1e-9)
        assert abs(np.linalg.det(R) - 1.0) < 1e-9

    @given(a=nonzero_vec3, b=nonzero_vec3)
    def test_rotation_between_action(self, a, b):
        an, bn = normalize(a), normalize(b)
        R = rotation_between(an, bn)
        np.testing.assert_allclose(R @ an, bn, atol=1e-7)
        np.testing.assert_allclose(R @ R.T, np.eye(3), atol=1e-8)


class TestRngProperties:
    @given(
        n=st.integers(1, 64),
        seed=st.integers(0, 2**63 - 1),
        draws=st.integers(1, 50),
    )
    @settings(max_examples=30)
    def test_uniform_range_always(self, n, seed, draws):
        g = seed_streams(n, seed=seed)
        for _ in range(draws):
            u = g.uniform()
            assert np.all(u >= 0.0) and np.all(u < 1.0)

    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 32))
    @settings(max_examples=30)
    def test_state_restore_reproduces(self, seed, n):
        g = seed_streams(n, seed=seed)
        g.jump(7)
        snapshot = g.state
        a = [g.next_uint32() for _ in range(5)]
        g2 = HybridTaus(snapshot)
        b = [g2.next_uint32() for _ in range(5)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    @given(
        u1=st.floats(0.0, 1.0, exclude_max=True),
        u2=st.floats(0.0, 1.0, exclude_max=True),
    )
    def test_box_muller_finite(self, u1, u2):
        z1, z2 = box_muller_pairs(np.array([u1]), np.array([u2]))
        assert np.isfinite(z1).all() and np.isfinite(z2).all()

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=20)
    def test_lanes_independent_of_batch_size(self, seed):
        # Lane k of a width-N generator equals lane 0 of a width-1
        # generator built from the same state row -- the property that
        # makes scalar/lockstep MCMC bit-identical.
        g = seed_streams(8, seed=seed)
        state = g.state
        full = g.next_uint32()
        for k in range(8):
            solo = HybridTaus(state[k : k + 1])
            assert solo.next_uint32()[0] == full[k]
