"""Cache-parity: a warm run is bit-identical to the cold run it reuses.

The artifact store's contract (ISSUE 7): serving a stage from the store
must be indistinguishable — bit for bit — from recomputing it.  This
suite proves it end to end on :func:`~repro.pipeline.run_workflow`:

* cold vs warm runs agree on posterior samples, streamline lengths and
  stop reasons, connectivity counts, and the deterministic manifest
  sections, across worker counts {1, 2, 4} and both tracking engines;
* a run that edits only tracking parameters *reuses* the sampling
  artifact (hash hit) while a sampling edit misses;
* the acceptance scenario: a tracking sweep of three specs over one
  sampling configuration runs MCMC exactly once;
* the service path (ISSUE 9): a manifest served by
  ``repro.service.TractographyService`` — computed or result-cached —
  matches a direct run of the same spec bit for bit.

Stage-hash algebra (which edits move which keys) is checked exhaustively
by Hypothesis over the spec's tracking/runtime fields.
"""

import json
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RunSpec, stage_hash
from repro.data import dataset1
from repro.pipeline import run_workflow
from repro.telemetry import (
    MetricsRegistry,
    build_manifest,
    deterministic_sections,
    use_registry,
)

#: Small-but-real MCMC settings (mirrors the telemetry suite's scale).
BASE_DOC = {
    "sampling": {
        "n_burnin": 20,
        "n_samples": 4,
        "sample_interval": 2,
        "adapt_every": 7,
    },
    "tracking": {"max_steps": 48},
}


@pytest.fixture(scope="module")
def phantom():
    return dataset1(scale=0.15, snr=40.0)


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    """One store shared by every run in this module (that is the point)."""
    return tmp_path_factory.mktemp("store")


def make_spec(store_root, **edits):
    """BASE_DOC + section edits + the shared store, as a RunSpec."""
    doc = json.loads(json.dumps(BASE_DOC))  # deep copy
    for section, fields in edits.items():
        doc.setdefault(section, {}).update(fields)
    doc.setdefault("telemetry", {})["store"] = str(store_root)
    return RunSpec.from_dict(doc)


def run_once(phantom, spec):
    """One workflow run under a fresh registry; result + manifest."""
    registry = MetricsRegistry()
    with use_registry(registry):
        wr = run_workflow(phantom, spec=spec)
    manifest = build_manifest(registry, config=spec.to_dict(), cache=wr.cache)
    return wr, manifest


def det_blob(manifest):
    """The bit-identity surface of a manifest, as one canonical string."""
    return json.dumps(deterministic_sections(manifest), sort_keys=True)


def assert_bit_identical(cold, warm):
    """Every deterministic output of two runs matches exactly."""
    wr_c, m_c = cold
    wr_w, m_w = warm
    np.testing.assert_array_equal(wr_c.bedpost.samples, wr_w.bedpost.samples)
    np.testing.assert_array_equal(
        wr_c.probtrack.run.lengths, wr_w.probtrack.run.lengths
    )
    np.testing.assert_array_equal(
        wr_c.probtrack.run.reasons, wr_w.probtrack.run.reasons
    )
    shape3 = wr_c.bedpost.fields[0].shape3
    np.testing.assert_array_equal(
        wr_c.probtrack.connectivity.visit_count_volume(shape3),
        wr_w.probtrack.connectivity.visit_count_volume(shape3),
    )
    assert det_blob(m_c) == det_blob(m_w)


class TestColdWarmParity:
    """Cold/warm bit-identity over one shared store.

    Ordered scenario: the first test populates the store (cold), the
    rest prove warm runs serve identical bits under execution-policy
    and engine variations.
    """

    cold = {}

    def test_cold_run_populates(self, phantom, store_root):
        spec = make_spec(store_root)
        wr, manifest = run_once(phantom, spec)
        assert wr.cache["sampling_hit"] is False
        assert wr.cache["tracking_hit"] is False
        assert wr.cache["writes"] == 2
        type(self).cold["per-sample"] = (wr, manifest)

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_warm_across_worker_counts(self, phantom, store_root, n_workers):
        # n_workers is execution policy: every count lands on the same
        # stage keys, so all three are full hits off the one cold run.
        spec = make_spec(store_root, runtime={"n_workers": n_workers})
        wr, manifest = run_once(phantom, spec)
        assert wr.cache["sampling_hit"] is True
        assert wr.cache["tracking_hit"] is True
        assert_bit_identical(self.cold["per-sample"], (wr, manifest))

    def test_fused_engine_cold_then_warm(self, phantom, store_root):
        # The engine is part of the tracking subtree, so fused keys its
        # own tracking artifact — but shares the sampling entry.
        spec = make_spec(store_root, tracking={"engine": "fused"})
        wr, manifest = run_once(phantom, spec)
        assert wr.cache["sampling_hit"] is True
        assert wr.cache["tracking_hit"] is False
        type(self).cold["fused"] = (wr, manifest)

        warm, warm_manifest = run_once(phantom, spec)
        assert warm.cache["sampling_hit"] is True
        assert warm.cache["tracking_hit"] is True
        assert_bit_identical(self.cold["fused"], (warm, warm_manifest))

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_warm_fused_across_worker_counts(
        self, phantom, store_root, n_workers
    ):
        spec = make_spec(
            store_root,
            tracking={"engine": "fused"},
            runtime={"n_workers": n_workers},
        )
        wr, manifest = run_once(phantom, spec)
        assert wr.cache["tracking_hit"] is True
        assert_bit_identical(self.cold["fused"], (wr, manifest))

    def test_no_cache_recomputes_but_matches(self, phantom, store_root):
        spec = make_spec(store_root, telemetry={"cache": False})
        wr, manifest = run_once(phantom, spec)
        assert wr.cache["sampling_hit"] is False
        assert wr.cache["tracking_hit"] is False
        assert_bit_identical(self.cold["per-sample"], (wr, manifest))


class TestStageReuse:
    def test_tracking_edit_reuses_sampling(self, phantom, store_root):
        spec = make_spec(store_root, tracking={"max_steps": 32})
        wr, _ = run_once(phantom, spec)
        assert wr.cache["sampling_hit"] is True, (
            "a tracking-only edit must reuse the MCMC posterior"
        )
        assert wr.cache["tracking_hit"] is False

    def test_sampling_edit_misses(self, phantom, tmp_path):
        # Fresh store: a cold run, then a seed edit — nothing reusable.
        cold = make_spec(tmp_path / "s")
        run_once(phantom, cold)
        edited = make_spec(tmp_path / "s", sampling={"seed": 1})
        wr, _ = run_once(phantom, edited)
        assert wr.cache["sampling_hit"] is False
        assert wr.cache["tracking_hit"] is False


class TestAcceptanceSweep:
    def test_three_spec_sweep_samples_once(self, phantom, tmp_path):
        """ISSUE 7 acceptance: a >=3-spec tracking sweep over one
        sampling config performs MCMC exactly once."""
        from repro.store import ArtifactStore

        root = tmp_path / "sweep-store"
        sweep = [
            make_spec(root, tracking={"max_steps": m}) for m in (24, 36, 48)
        ]
        hits = []
        for spec in sweep:
            wr, _ = run_once(phantom, spec)
            hits.append(wr.cache["sampling_hit"])
        assert hits == [False, True, True], (
            "only the first run may compute the posterior"
        )
        listing = ArtifactStore(root).ls()
        assert sum(e["stage"] == "sampling" for e in listing) == 1
        assert sum(e["stage"] == "tracking" for e in listing) == 3


# -- stage-hash algebra (pure hashing; no MCMC) ---------------------------

_TRACKING_EDITS = st.sampled_from(
    [
        ("max_steps", 7),
        ("min_dot", 0.5),
        ("step_length", 0.3),
        ("strategy", "b"),
        ("engine", "fused"),
        ("bidirectional", True),
    ]
)

_POLICY_EDITS = st.sampled_from(
    [
        ("n_workers", 8),
        ("max_retries", 5),
        ("shard_timeout_s", 9.0),
        ("fallback_to_serial", False),
        ("array_backend", "numpy"),
        ("checkpoint_every_loops", 10),
    ]
)


@settings(max_examples=30, deadline=None)
@given(edit=_TRACKING_EDITS)
def test_tracking_edits_keep_sampling_key(edit):
    name, value = edit
    doc = {"tracking": {name: value}}
    assert stage_hash(doc, "sampling") == stage_hash({}, "sampling")
    moved = stage_hash(doc, "tracking") != stage_hash({}, "tracking")
    default = RunSpec().to_dict()["tracking"][name]
    assert moved == (value != default)


@settings(max_examples=30, deadline=None)
@given(edit=_POLICY_EDITS)
def test_execution_policy_moves_no_key(edit):
    name, value = edit
    doc = {"runtime": {name: value}}
    assert stage_hash(doc, "sampling") == stage_hash({}, "sampling")
    assert stage_hash(doc, "tracking") == stage_hash({}, "tracking")


@settings(max_examples=30, deadline=None)
@given(
    field=st.sampled_from(
        ["n_burnin", "n_samples", "sample_interval", "seed", "n_fibers"]
    ),
    delta=st.integers(min_value=1, max_value=50),
)
def test_sampling_edits_move_both_keys(field, delta):
    default = RunSpec().to_dict()["sampling"][field]
    doc = {"sampling": {field: default + delta}}
    assert stage_hash(doc, "sampling") != stage_hash({}, "sampling")
    assert stage_hash(doc, "tracking") != stage_hash({}, "tracking")


@settings(max_examples=20, deadline=None)
@given(tag=st.text(min_size=1, max_size=16))
def test_inputs_always_participate(tag):
    assert stage_hash({}, "sampling", inputs={"data": tag}) != stage_hash(
        {}, "sampling"
    )


class TestServiceParity:
    """ISSUE 9: the parity contract extended through the service path.

    A manifest served by :class:`~repro.service.TractographyService`
    (whose default dataset is exactly this suite's phantom) must be
    bit-identical on the deterministic sections to a direct
    ``run_workflow`` of the same spec — both when the job computes and
    when a resubmission is served from the result cache.
    """

    def test_served_manifest_matches_direct_run(self, phantom, store_root):
        from repro.service import ServiceConfig, TractographyService

        _, direct = run_once(phantom, make_spec(store_root))

        cfg = ServiceConfig(
            store_root=str(store_root), slots=1, queue_limit=4
        )
        with TractographyService(cfg) as svc:
            view = svc.submit({"spec": BASE_DOC})
            deadline = time.monotonic() + 180.0
            while time.monotonic() < deadline:
                view = svc.status(view["job_id"])
                if view["state"] in ("done", "failed", "cancelled"):
                    break
                time.sleep(0.05)
            assert view["state"] == "done", view
            served = svc.result(view["job_id"])

            again = svc.submit({"spec": BASE_DOC})
            assert again["cache_hit"] is True
            resubmitted = svc.result(again["job_id"])

        assert det_blob(served) == det_blob(direct)
        assert resubmitted == served
