"""Worker-count invariance of the sharded bedpost MCMC stage.

The PR-8 determinism bar: for any ``n_workers``, the sharded posterior
is bit-identical to the single-process path — raw samples, acceptance
history, and the deterministic telemetry sections (``mcmc.*`` /
``bedpost.*`` counters and histograms) — because shards are contiguous
runs of the *serial* block decomposition, every voxel's chains come from
:func:`~repro.rng.streams.block_streams`, and worker snapshots merge in
task order.
"""

import json
import logging

import numpy as np
import pytest

from repro.data import dataset1
from repro.mcmc import MCMCConfig
from repro.pipeline import BedpostConfig, bedpost
from repro.telemetry import MetricsRegistry, use_registry

FAST = MCMCConfig(n_burnin=16, n_samples=4, sample_interval=2, adapt_every=7)


@pytest.fixture(scope="module")
def phantom():
    return dataset1(scale=0.15, snr=40.0)


def _cfg(n_workers, **kwargs):
    # Small blocks so even the tiny phantom yields several shardable
    # units (the serial decomposition itself must not vary with workers).
    return BedpostConfig(mcmc=FAST, block_voxels=11, n_workers=n_workers,
                         **kwargs)


def _run(phantom, n_workers, **kwargs):
    registry = MetricsRegistry()
    with use_registry(registry):
        result = bedpost(
            phantom.dwi, phantom.gtab, phantom.mask, _cfg(n_workers, **kwargs)
        )
    snap = registry.snapshot()
    det = json.dumps(
        {"counters": snap["counters"], "histograms": snap["histograms"]},
        sort_keys=True,
    )
    return result, det


def test_worker_count_invariance(phantom):
    serial, serial_det = _run(phantom, 1)
    assert serial.supervision is None
    for n_workers in (2, 4):
        sharded, det = _run(phantom, n_workers)
        np.testing.assert_array_equal(serial.samples, sharded.samples)
        assert serial.acceptance_history == sharded.acceptance_history
        assert det == serial_det
        sup = sharded.supervision
        assert sup is not None and sup.n_shards == n_workers
        assert sup.n_failures == 0


def test_sharded_fields_match_serial(phantom):
    serial, _ = _run(phantom, 1)
    sharded, _ = _run(phantom, 3)
    for a, b in zip(serial.fields, sharded.fields):
        np.testing.assert_array_equal(a.f, b.f)
        np.testing.assert_array_equal(a.directions, b.directions)


def test_store_keys_and_entries_shared_across_worker_counts(phantom, tmp_path):
    # Execution policy is excluded from stage hashes: a store populated
    # by a 1-worker run must serve a 4-worker request bit-identically.
    from repro.store import ArtifactStore

    store = ArtifactStore(tmp_path / "store")
    cold = bedpost(phantom.dwi, phantom.gtab, phantom.mask, _cfg(1),
                   store=store)
    warm = bedpost(phantom.dwi, phantom.gtab, phantom.mask, _cfg(4),
                   store=store)
    assert warm.served_from_store
    assert warm.stage_key == cold.stage_key
    np.testing.assert_array_equal(cold.samples, warm.samples)


def test_worker_clamp_shares_stage_unit_label(phantom, caplog):
    # The clamp warning is the stage-generic one, phrased in this
    # stage's unit ("voxel block"), and the result still matches serial.
    serial, _ = _run(phantom, 1)
    n_blocks = -(-serial.n_voxels // 11)
    with caplog.at_level(logging.INFO, logger="repro.runtime.stage"):
        clamped, _ = _run(phantom, n_blocks + 5)
    clamps = [m for m in caplog.messages if "clamping n_workers" in m]
    assert len(clamps) == 1 and "voxel block" in clamps[0]
    np.testing.assert_array_equal(serial.samples, clamped.samples)
    assert clamped.supervision.n_shards == n_blocks
