"""Worker-count invariance of the telemetry deterministic section.

The contract of :mod:`repro.telemetry`: counters registered
``deterministic=True`` and all histograms are pure functions of the
work performed, so the manifest's deterministic section is bit-identical
between a serial run and any ``n_workers`` — worker shards count into
fresh local registries whose snapshots merge in task order.  Measured
state (timers, spans, gauges, ops counters) is exempt.
"""

import json

import numpy as np
import pytest

from repro.data import dataset1
from repro.models.fields import FiberField
from repro.telemetry import (
    MetricsRegistry,
    build_manifest,
    deterministic_sections,
    use_registry,
)
from repro.tracking import (
    ProbtrackConfig,
    TerminationCriteria,
    probabilistic_streamlining,
)
from repro.utils.geometry import normalize

N_SAMPLES = 4


@pytest.fixture(scope="module")
def fields():
    """Small pseudo-posterior sample volumes (perturbed ground truth)."""
    phantom = dataset1(scale=0.15, snr=40.0)
    truth = phantom.truth
    rng = np.random.default_rng(7)
    out = []
    for _ in range(N_SAMPLES):
        has_fiber = truth.f > 0
        noise = rng.normal(scale=0.15, size=truth.directions.shape)
        dirs = normalize(truth.directions + noise * has_fiber[..., None])
        out.append(
            FiberField(
                f=truth.f.copy(),
                directions=dirs * has_fiber[..., None],
                mask=truth.mask.copy(),
            )
        )
    return out


def run_with_metrics(fields, n_workers, order="natural"):
    """One tracking run under a fresh registry; returns its manifest."""
    cfg = ProbtrackConfig(
        criteria=TerminationCriteria(max_steps=64, min_dot=0.8, step_length=0.2),
        order=order,
        n_workers=n_workers,
    )
    registry = MetricsRegistry()
    with use_registry(registry):
        probabilistic_streamlining(fields, config=cfg)
    return build_manifest(registry, meta={"n_workers": n_workers})


@pytest.mark.parametrize("order", ["natural", "sorted"])
def test_deterministic_sections_bit_identical(fields, order):
    serial = run_with_metrics(fields, 1, order)
    base = json.dumps(deterministic_sections(serial), sort_keys=True)
    for n_workers in (2, 4):
        parallel = run_with_metrics(fields, n_workers, order)
        got = json.dumps(deterministic_sections(parallel), sort_keys=True)
        assert got == base, f"n_workers={n_workers} drifted from serial"


def test_deterministic_counters_cover_the_hot_path(fields):
    doc = run_with_metrics(fields, 2)
    for name in (
        "tracking.steps",
        "tracking.kernel_launches",
        "tracking.compactions",
        "tracking.threads_retired",
        "probtrack.seeds_launched",
        "probtrack.samples_tracked",
    ):
        assert doc["counters"][name] > 0, name
    hist = doc["histograms"]["tracking.streamline_steps"]
    assert sum(hist["counts"]) == hist["n"] > 0


def test_worker_spans_merge_into_parent(fields):
    cfg = ProbtrackConfig(
        criteria=TerminationCriteria(max_steps=64, min_dot=0.8, step_length=0.2),
        n_workers=2,
    )
    registry = MetricsRegistry()
    with use_registry(registry):
        probabilistic_streamlining(fields, config=cfg)
    workers = {s.worker for s in registry.spans}
    assert 0 in workers, "parent-side spans present"
    assert workers - {0}, "worker shard spans merged back"
    # Every worker span's parent index stays inside the span list.
    for i, s in enumerate(registry.spans):
        assert s.parent is None or 0 <= s.parent < i


def test_retries_do_not_perturb_deterministic_section(fields):
    """A crashed-then-retried shard must count its work exactly once."""
    from repro.runtime.faults import FaultPlan

    serial = run_with_metrics(fields, 1)
    cfg = ProbtrackConfig(
        criteria=TerminationCriteria(max_steps=64, min_dot=0.8, step_length=0.2),
        n_workers=2,
        fault_plan=FaultPlan.parse("crash:0"),
    )
    registry = MetricsRegistry()
    with use_registry(registry):
        probabilistic_streamlining(fields, config=cfg)
    doc = build_manifest(registry, meta={})
    assert json.dumps(deterministic_sections(doc), sort_keys=True) == json.dumps(
        deterministic_sections(serial), sort_keys=True
    )
    assert doc["ops"]["runtime.retries"] >= 1
    assert doc["ops"]["runtime.failures.crash"] >= 1
