"""Worker-count invariance of the process execution backend.

The determinism contract of :mod:`repro.runtime`: for any ``n_workers``,
the merged output is bit-identical to the serial path — ``lengths``,
``reasons``, connectivity ``probability()``, and per-kind timeline
totals.  Exercised over the order/overlap/bidirectional option grid,
including the ``"sorted"`` policy whose permutation depends on the
globally-first sample (the case the two-phase shard scheme exists for).
"""

import numpy as np
import pytest

from repro.data import dataset1
from repro.models.fields import FiberField
from repro.tracking import (
    ProbtrackConfig,
    TerminationCriteria,
    probabilistic_streamlining,
)
from repro.utils.geometry import normalize

N_SAMPLES = 4


@pytest.fixture(scope="module")
def fields():
    """Small pseudo-posterior sample volumes (perturbed ground truth)."""
    phantom = dataset1(scale=0.15, snr=40.0)
    truth = phantom.truth
    rng = np.random.default_rng(7)
    out = []
    for _ in range(N_SAMPLES):
        has_fiber = truth.f > 0
        noise = rng.normal(scale=0.15, size=truth.directions.shape)
        dirs = normalize(truth.directions + noise * has_fiber[..., None])
        out.append(
            FiberField(
                f=truth.f.copy(),
                directions=dirs * has_fiber[..., None],
                mask=truth.mask.copy(),
            )
        )
    return out


def run(fields, n_workers, order="natural", overlap=False, bidirectional=False):
    cfg = ProbtrackConfig(
        criteria=TerminationCriteria(max_steps=200, min_dot=0.8, step_length=0.2),
        order=order,
        overlap=overlap,
        bidirectional=bidirectional,
        n_workers=n_workers,
    )
    return probabilistic_streamlining(fields, config=cfg)


@pytest.mark.parametrize(
    "order,overlap,bidirectional",
    [
        ("natural", False, False),
        ("sorted", False, False),
        ("sorted", True, False),
        ("natural", False, True),
        ("sorted", False, True),
    ],
)
def test_worker_count_invariance(fields, order, overlap, bidirectional):
    serial = run(fields, 1, order, overlap, bidirectional)
    base_totals = serial.run.timeline.totals()
    for n_workers in (2, 4):
        parallel = run(fields, n_workers, order, overlap, bidirectional)
        assert np.array_equal(serial.run.lengths, parallel.run.lengths)
        assert np.array_equal(serial.run.reasons, parallel.run.reasons)
        diff = serial.connectivity.probability() != parallel.connectivity.probability()
        assert diff.nnz == 0
        totals = parallel.run.timeline.totals()
        for kind in ("kernel", "transfer", "reduction"):
            assert totals[kind] == base_totals[kind], kind
        # Same modeled work, merged bookkeeping intact.
        assert len(serial.run.launches) == len(parallel.run.launches)
        assert serial.run.cpu_seconds == parallel.run.cpu_seconds
        assert parallel.run.worker_walls, "process backend records shard walls"


def test_single_sample_degrades_to_serial(fields):
    serial = run(fields[:1], 1)
    parallel = run(fields[:1], 4)
    assert np.array_equal(serial.run.lengths, parallel.run.lengths)
    diff = serial.connectivity.probability() != parallel.connectivity.probability()
    assert diff.nnz == 0


def test_workers_exceeding_samples_clamped_and_logged(fields, caplog):
    """Regression: n_workers > n_samples must clamp, log once, and stay
    bit-identical — never spawn idle workers or fail."""
    import logging

    serial = run(fields[:3], 1)
    with caplog.at_level(logging.INFO, logger="repro.runtime.stage"):
        parallel = run(fields[:3], 8)
    clamp_logs = [m for m in caplog.messages if "clamping n_workers" in m]
    assert len(clamp_logs) == 1
    assert np.array_equal(serial.run.lengths, parallel.run.lengths)
    assert np.array_equal(serial.run.reasons, parallel.run.reasons)
    diff = serial.connectivity.probability() != parallel.connectivity.probability()
    assert diff.nnz == 0
