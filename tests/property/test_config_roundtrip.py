"""Property tests for the run-spec round-trip and content-hash contracts.

The contracts under test:

* ``RunSpec.from_dict(spec.to_dict()) == spec`` for every valid spec —
  serialization is lossless;
* the content hash is a pure function of the spec's *computation*
  fields: stable under dict key order and telemetry changes, and equal
  exactly when the round-tripped specs are equal;
* stage configs built from a spec embed back into an equivalent spec.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RunSpec, hash_spec_dict
from repro.tracking import ProbtrackConfig

SEGMENT_ARRAYS = st.one_of(
    st.none(), st.lists(st.integers(1, 64), min_size=1, max_size=8)
)

RUN_SPEC_DICTS = st.fixed_dictionaries(
    {},
    optional={
        "sampling": st.fixed_dictionaries(
            {},
            optional={
                "n_burnin": st.integers(0, 2000),
                "n_samples": st.integers(1, 200),
                "sample_interval": st.integers(1, 10),
                "seed": st.integers(0, 2**31 - 1),
                "n_fibers": st.integers(1, 4),
                "ard": st.booleans(),
                "noise_model": st.sampled_from(["gaussian", "rician"]),
                "f_threshold": st.floats(0.0, 1.0, allow_nan=False),
            },
        ),
        "tracking": st.fixed_dictionaries(
            {},
            optional={
                "max_steps": st.integers(1, 4000),
                "min_dot": st.floats(0.0, 1.0, allow_nan=False),
                "step_length": st.floats(
                    0.01, 2.0, allow_nan=False, exclude_min=False
                ),
                "strategy": st.sampled_from(
                    ["increasing", "b", "c", "single", "a1", "a20"]
                ),
                "interpolation": st.sampled_from(
                    ["trilinear", "trilinear-reference", "nearest"]
                ),
                "order": st.sampled_from(["natural", "sorted"]),
                "bidirectional": st.booleans(),
                "min_export_steps": st.integers(0, 500),
            },
        ),
        "runtime": st.fixed_dictionaries(
            {},
            optional={
                "n_workers": st.integers(1, 8),
                "max_retries": st.integers(0, 5),
                "fallback_to_serial": st.booleans(),
            },
        ),
        "telemetry": st.fixed_dictionaries(
            {},
            optional={
                "metrics_out": st.one_of(
                    st.none(), st.just("m.json"), st.just("other.json")
                ),
            },
        ),
    },
)


@given(doc=RUN_SPEC_DICTS)
@settings(max_examples=200, deadline=None)
def test_dict_roundtrip_is_lossless(doc):
    spec = RunSpec.from_dict(doc)
    assert RunSpec.from_dict(spec.to_dict()) == spec


@given(doc=RUN_SPEC_DICTS)
@settings(max_examples=100, deadline=None)
def test_hash_stable_under_key_order(doc):
    spec = RunSpec.from_dict(doc)
    # Re-serialize with reversed key order at both levels.
    shuffled = {
        section: dict(reversed(list(fields.items())))
        for section, fields in reversed(list(spec.to_dict().items()))
    }
    assert hash_spec_dict(shuffled) == spec.content_hash()
    # ... and the JSON text round-trip changes nothing.
    assert hash_spec_dict(json.loads(json.dumps(shuffled))) == spec.content_hash()


@given(doc=RUN_SPEC_DICTS)
@settings(max_examples=100, deadline=None)
def test_hash_ignores_telemetry_only(doc):
    spec = RunSpec.from_dict(doc)
    rerouted = spec.with_overrides({"telemetry.metrics_out": "elsewhere.json"})
    assert rerouted.content_hash() == spec.content_hash()


@given(doc=RUN_SPEC_DICTS, array=SEGMENT_ARRAYS)
@settings(max_examples=100, deadline=None)
def test_probtrack_config_spec_embedding(doc, array):
    spec = RunSpec.from_dict(doc)
    if array is not None:
        spec = spec.with_overrides(
            {"tracking.strategy": "custom-run", "tracking.strategy_array": array}
        )
    cfg = ProbtrackConfig.from_run_spec(spec)
    rebuilt = ProbtrackConfig.from_spec_dict(cfg.to_spec_dict())
    assert rebuilt == cfg
