"""Chaos tests: recovered runs are bit-identical to the serial path.

Hypothesis generates arbitrary :class:`FaultPlan`s — crashes, hangs, and
corrupted payloads at arbitrary shards/attempts — and the property is
always the same: after supervised recovery, ``lengths``, stop
``reasons``, and the sparse connectivity matrix match the
:class:`SerialBackend` output bit for bit, for ``n_workers`` in {2, 4}
and across the sorted/overlap/bidirectional option grid.  A
pool-exhaustion scenario (every attempt of every shard crashes) must
demonstrably complete via the serial fallback.

The fields are deliberately tiny (a straight-fiber corridor phantom) so
each recovered run costs fractions of a second; hang cases pair a small
injected sleep with a smaller ``shard_timeout_s``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.models.fields import FiberField
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.tracking import (
    ProbtrackConfig,
    TerminationCriteria,
    probabilistic_streamlining,
)
from repro.utils.geometry import normalize

pytestmark = pytest.mark.chaos

N_SAMPLES = 4
SHAPE = (10, 6, 4)


@pytest.fixture(scope="module")
def fields():
    """Tiny straight-fiber corridor, perturbed per sample."""
    base_dir = np.zeros(SHAPE + (2, 3))
    f = np.zeros(SHAPE + (2,))
    f[1:9, 2:4, 1:3, 0] = 0.6
    base_dir[1:9, 2:4, 1:3, 0] = (1.0, 0.0, 0.0)
    mask = f[..., 0] > 0
    rng = np.random.default_rng(11)
    out = []
    for _ in range(N_SAMPLES):
        noise = rng.normal(scale=0.12, size=base_dir.shape)
        dirs = normalize(base_dir + noise * (f > 0)[..., None])
        out.append(
            FiberField(f=f.copy(), directions=dirs * (f > 0)[..., None],
                       mask=mask.copy())
        )
    return out


@pytest.fixture(scope="module")
def seed_mask():
    m = np.zeros(SHAPE, dtype=bool)
    m[2:5, 2:4, 1:3] = True
    return m


def run(fields, seed_mask, n_workers, plan=None, timeout=None,
        order="natural", overlap=False, bidirectional=False):
    cfg = ProbtrackConfig(
        criteria=TerminationCriteria(max_steps=40, min_dot=0.7, step_length=0.25),
        order=order,
        overlap=overlap,
        bidirectional=bidirectional,
        n_workers=n_workers,
        fault_plan=plan,
        shard_timeout_s=timeout,
        max_retries=2,
    )
    return probabilistic_streamlining(fields, config=cfg, seed_mask=seed_mask)


_serial_cache = {}


def serial_reference(fields, seed_mask, order="natural", overlap=False,
                     bidirectional=False):
    key = (order, overlap, bidirectional)
    if key not in _serial_cache:
        _serial_cache[key] = run(fields, seed_mask, 1, order=order,
                                 overlap=overlap, bidirectional=bidirectional)
    return _serial_cache[key]


def assert_bit_identical(serial, recovered):
    assert np.array_equal(serial.run.lengths, recovered.run.lengths)
    assert np.array_equal(serial.run.reasons, recovered.run.reasons)
    diff = serial.connectivity.probability() != recovered.connectivity.probability()
    assert diff.nnz == 0
    s_tot = serial.run.timeline.totals()
    r_tot = recovered.run.timeline.totals()
    for kind in ("kernel", "transfer", "reduction"):
        assert s_tot[kind] == r_tot[kind], kind


fault_specs = st.builds(
    FaultSpec,
    kind=st.sampled_from(["crash", "corrupt"]),
    shard=st.integers(min_value=0, max_value=3),
    attempt=st.sampled_from([0, 0, 1, -1]),
)
fault_plans = st.lists(fault_specs, min_size=1, max_size=4).map(
    lambda specs: FaultPlan(faults=tuple(specs))
)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(plan=fault_plans, n_workers=st.sampled_from([2, 4]))
def test_any_crash_corrupt_plan_recovers_bit_identical(
        fields, seed_mask, plan, n_workers):
    serial = serial_reference(fields, seed_mask)
    recovered = run(fields, seed_mask, n_workers, plan=plan)
    assert_bit_identical(serial, recovered)
    # Any fault that actually fired must appear in the report.
    sup = recovered.run.supervision
    if sup is not None and sup.n_failures:
        assert sup.n_retries + len(sup.fallbacks) + len(sup.reshards) > 0


@pytest.mark.parametrize("n_workers", [2, 4])
def test_hang_fault_times_out_and_recovers(fields, seed_mask, n_workers):
    plan = FaultPlan.parse("hang:0", hang_seconds=5.0)
    serial = serial_reference(fields, seed_mask)
    recovered = run(fields, seed_mask, n_workers, plan=plan, timeout=0.75)
    assert_bit_identical(serial, recovered)
    sup = recovered.run.supervision
    assert sup.failure_counts() == {"timeout": 1}


@pytest.mark.parametrize(
    "order,overlap,bidirectional",
    [
        ("sorted", False, False),
        ("sorted", True, False),
        ("natural", False, True),
        ("sorted", False, True),
    ],
)
def test_recovery_across_mode_grid(fields, seed_mask, order, overlap,
                                   bidirectional):
    plan = FaultPlan.parse("crash:0,corrupt:1")
    serial = serial_reference(fields, seed_mask, order, overlap, bidirectional)
    recovered = run(fields, seed_mask, 2, plan=plan, order=order,
                    overlap=overlap, bidirectional=bidirectional)
    assert_bit_identical(serial, recovered)
    assert recovered.run.supervision.n_failures == 2


@pytest.mark.parametrize("n_workers", [2, 4])
def test_pool_exhaustion_completes_via_serial_fallback(
        fields, seed_mask, n_workers):
    # Every attempt of every shard crashes: the pool is useless, the
    # supervisor re-shards, the re-shards crash too, and every piece of
    # work must complete through the in-parent serial fallback.
    plan = FaultPlan.parse(
        ",".join(f"crash:{s}:*" for s in range(n_workers)))
    serial = serial_reference(fields, seed_mask)
    recovered = run(fields, seed_mask, n_workers, plan=plan)
    assert_bit_identical(serial, recovered)
    sup = recovered.run.supervision
    assert sup.fallbacks, "expected at least one serial fallback"
    if n_workers < N_SAMPLES:  # multi-sample shards get re-sharded first
        assert sup.reshards, "expected re-sharding before fallback"
    # Retry timeline events carry the recovery story.
    retry_events = [e for e in recovered.run.timeline.events
                    if e.kind == "retry"]
    assert len(retry_events) == sup.n_failures


def test_exhaustion_raises_when_fallback_disabled(fields, seed_mask):
    plan = FaultPlan.parse("crash:0:*,crash:1:*")
    from repro.errors import PoolExhaustedError

    cfg = ProbtrackConfig(
        criteria=TerminationCriteria(max_steps=40, min_dot=0.7, step_length=0.25),
        n_workers=2,
        fault_plan=plan,
        fallback_to_serial=False,
        max_retries=1,
    )
    with pytest.raises(PoolExhaustedError):
        probabilistic_streamlining(fields, config=cfg, seed_mask=seed_mask)


def test_sample_targeted_fault_only_poisons_its_shard(fields, seed_mask):
    # Sample-index targeting: whichever shard owns global sample 3
    # fails persistently; re-sharding isolates the poisoned sample and
    # the rest of the shard recovers on the pool.
    plan = FaultPlan.parse("crash:s3:*")
    serial = serial_reference(fields, seed_mask)
    recovered = run(fields, seed_mask, 2, plan=plan)
    assert_bit_identical(serial, recovered)
    sup = recovered.run.supervision
    assert sup.reshards == [1]
    assert sup.fallbacks == [1]  # only the poisoned single-sample piece
