"""Property-based round-trip tests for the I/O substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.io import (
    GradientTable,
    Volume,
    read_bvals_bvecs,
    read_nifti,
    read_trk,
    write_bvals_bvecs,
    write_nifti,
    write_trk,
)
from repro.utils.geometry import fibonacci_sphere

small_shapes = st.tuples(
    st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)
)


class TestNiftiProperties:
    @given(
        shape=small_shapes,
        seed=st.integers(0, 2**31 - 1),
        dtype=st.sampled_from([np.uint8, np.int16, np.int32, np.float32, np.float64]),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_volume_round_trips(self, tmp_path_factory, shape, seed, dtype):
        tmp = tmp_path_factory.mktemp("nii")
        rng = np.random.default_rng(seed)
        if np.issubdtype(dtype, np.integer):
            info = np.iinfo(dtype)
            data = rng.integers(
                max(info.min, -1000), min(info.max, 1000), size=shape
            ).astype(dtype)
        else:
            data = rng.uniform(-1e3, 1e3, size=shape).astype(dtype)
        vol = Volume(data)
        path = tmp / "x.nii"
        write_nifti(path, vol)
        back = read_nifti(path)
        np.testing.assert_array_equal(back.data, data)

    @given(
        trans=hnp.arrays(np.float64, (3,), elements=st.floats(-100, 100)),
        scales=hnp.arrays(np.float64, (3,), elements=st.floats(0.1, 10)),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_affine_round_trips(self, tmp_path_factory, trans, scales, seed):
        tmp = tmp_path_factory.mktemp("aff")
        aff = np.eye(4)
        aff[0, 0], aff[1, 1], aff[2, 2] = scales
        aff[:3, 3] = trans
        vol = Volume(np.zeros((2, 2, 2), dtype=np.float32), affine=aff)
        path = tmp / "a.nii"
        write_nifti(path, vol)
        np.testing.assert_allclose(read_nifti(path).affine, aff, atol=1e-4)


class TestTrkProperties:
    @given(
        n_lines=st.integers(0, 8),
        seed=st.integers(0, 2**31 - 1),
        vs=st.tuples(
            st.floats(0.5, 4.0), st.floats(0.5, 4.0), st.floats(0.5, 4.0)
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_streamlines_round_trip(self, tmp_path_factory, n_lines, seed, vs):
        tmp = tmp_path_factory.mktemp("trk")
        rng = np.random.default_rng(seed)
        lines = [
            rng.uniform(0, 50, size=(rng.integers(1, 40), 3))
            for _ in range(n_lines)
        ]
        path = tmp / "t.trk"
        write_trk(path, lines, voxel_sizes=vs)
        back, meta = read_trk(path)
        assert meta["n_count"] == n_lines
        for a, b in zip(lines, back):
            np.testing.assert_allclose(a, b, atol=1e-3)


class TestGradientProperties:
    @given(
        n_dwi=st.integers(6, 40),
        n_b0=st.integers(0, 5),
        bval=st.floats(100, 5000),
    )
    @settings(max_examples=25, deadline=None)
    def test_fsl_files_round_trip(self, tmp_path_factory, n_dwi, n_b0, bval):
        tmp = tmp_path_factory.mktemp("grad")
        bvals = np.concatenate([np.zeros(n_b0), np.full(n_dwi, bval)])
        bvecs = np.concatenate([np.zeros((n_b0, 3)), fibonacci_sphere(n_dwi)])
        t = GradientTable(bvals, bvecs)
        write_bvals_bvecs(t, tmp / "bvals", tmp / "bvecs")
        back = read_bvals_bvecs(tmp / "bvals", tmp / "bvecs")
        assert back.n_b0 == n_b0
        assert back.n_dwi == n_dwi
        np.testing.assert_allclose(back.bvecs, t.bvecs, atol=1e-6)

    @given(n=st.integers(1, 30), seed=st.integers(0, 1000))
    @settings(max_examples=25)
    def test_subset_preserves_rows(self, n, seed):
        rng = np.random.default_rng(seed)
        bvals = np.full(n, 1000.0)
        bvecs = fibonacci_sphere(n)
        t = GradientTable(bvals, bvecs)
        idx = rng.permutation(n)[: max(1, n // 2)]
        sub = t.subset(idx)
        np.testing.assert_allclose(sub.bvecs, t.bvecs[idx])


class TestVolumeProperties:
    @given(
        shape=small_shapes,
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30)
    def test_flat_index_bijection(self, shape, seed):
        vol = Volume(np.zeros(shape))
        rng = np.random.default_rng(seed)
        n = int(np.prod(shape))
        flat = rng.permutation(n)[: min(n, 20)]
        ijk = vol.unravel_index(flat)
        np.testing.assert_array_equal(vol.flat_index(ijk), flat)

    @given(
        shape=small_shapes,
        pts=hnp.arrays(np.float64, (5, 3), elements=st.floats(-20, 20)),
    )
    @settings(max_examples=30)
    def test_world_round_trip(self, shape, pts):
        aff = np.eye(4)
        aff[0, 0], aff[1, 1], aff[2, 2] = 2.0, 2.5, 3.0
        aff[:3, 3] = [1.0, -2.0, 3.0]
        vol = Volume(np.zeros(shape), affine=aff)
        back = vol.world_to_voxel(vol.voxel_to_world(pts))
        np.testing.assert_allclose(back, pts, atol=1e-9)
