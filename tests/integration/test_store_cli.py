"""End-to-end ``--store`` behavior of the CLIs.

Cold/warm runs of ``repro-bedpost`` and ``repro-track`` through one
artifact store: the warm run announces the hit, writes byte/array-
identical outputs, and its manifest's deterministic sections match the
cold run's exactly, while the operational ``cache`` section records the
hit.  ``--no-cache`` forces recompute; ``--replay`` + the embedded
``telemetry.store`` gives partial stage reuse.
"""

import json

import numpy as np
import pytest

from repro.cli.bedpost_cmd import main as bedpost_main
from repro.cli.phantom_cmd import main as phantom_main
from repro.cli.track_cmd import main as track_main
from repro.io import read_nifti
from repro.telemetry import deterministic_sections, load_manifest


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    """A tiny phantom acquisition shared by the whole module."""
    root = tmp_path_factory.mktemp("store-cli")
    data = root / "data"
    phantom_main([str(data), "--scale", "0.2", "--directions", "9"])
    return data


def det_blob(manifest_path):
    return json.dumps(
        deterministic_sections(load_manifest(manifest_path)), sort_keys=True
    )


class TestBedpostStore:
    def test_cold_then_warm(self, data_dir, tmp_path, capsys):
        store = tmp_path / "store"
        m1, m2 = tmp_path / "m1.json", tmp_path / "m2.json"
        out1, out2 = tmp_path / "b1", tmp_path / "b2"
        base = [str(data_dir), "--burnin", "40", "--samples", "4",
                "--store", str(store)]

        assert bedpost_main(base + ["--output-dir", str(out1),
                                    "--metrics-out", str(m1)]) == 0
        cold_out = capsys.readouterr().out
        assert "served from store" not in cold_out

        assert bedpost_main(base + ["--output-dir", str(out2),
                                    "--metrics-out", str(m2)]) == 0
        warm_out = capsys.readouterr().out
        assert "served from store" in warm_out

        # The CLI outputs are identical in content...
        a = np.load(out1 / "samples.npz")
        b = np.load(out2 / "samples.npz")
        assert sorted(a.files) == sorted(b.files)
        for name in a.files:
            np.testing.assert_array_equal(a[name], b[name])
        np.testing.assert_array_equal(
            read_nifti(out1 / "mean_f1.nii.gz").data,
            read_nifti(out2 / "mean_f1.nii.gz").data,
        )
        # ...the deterministic manifest sections bit-identical...
        assert det_blob(m1) == det_blob(m2)
        # ...and the operational cache section tells the two runs apart.
        c1, c2 = load_manifest(m1)["cache"], load_manifest(m2)["cache"]
        assert c1["sampling_hit"] is False and c2["sampling_hit"] is True
        assert c1["stage_keys"]["sampling"] == c2["stage_keys"]["sampling"]
        assert c1["writes"] == 1 and c2["hits"] == 1

    def test_no_cache_recomputes(self, data_dir, tmp_path, capsys):
        store = tmp_path / "store"
        base = [str(data_dir), "--burnin", "40", "--samples", "4",
                "--store", str(store)]
        m = tmp_path / "m.json"
        assert bedpost_main(base + ["--output-dir", str(tmp_path / "b1")]) == 0
        assert bedpost_main(base + ["--no-cache",
                                    "--output-dir", str(tmp_path / "b2"),
                                    "--metrics-out", str(m)]) == 0
        assert "served from store" not in capsys.readouterr().out
        cache = load_manifest(m)["cache"]
        assert cache["sampling_hit"] is False
        # The recompute re-published: the existing valid entry was kept
        # (race-loser semantics), so no miss and no fresh write counted.
        assert cache["misses"] == 0 and cache["hits"] == 0

    def test_seed_edit_misses(self, data_dir, tmp_path, capsys):
        store = tmp_path / "store"
        base = [str(data_dir), "--burnin", "40", "--samples", "4",
                "--store", str(store)]
        assert bedpost_main(base + ["--output-dir", str(tmp_path / "b1")]) == 0
        m = tmp_path / "m.json"
        assert bedpost_main(base + ["--seed", "3",
                                    "--output-dir", str(tmp_path / "b2"),
                                    "--metrics-out", str(m)]) == 0
        assert load_manifest(m)["cache"]["sampling_hit"] is False


@pytest.fixture(scope="module")
def bedpost_dir(data_dir):
    bedpost_main([str(data_dir), "--burnin", "40", "--samples", "4"])
    return data_dir / "bedpost"


class TestTrackStore:
    def _run(self, bedpost_dir, out, store, extra):
        args = [str(bedpost_dir), "--output-dir", str(out),
                "--max-steps", "150", "--store", str(store)] + extra
        assert track_main(args) == 0

    def test_cold_then_warm(self, bedpost_dir, tmp_path, capsys):
        store = tmp_path / "store"
        m1, m2 = tmp_path / "m1.json", tmp_path / "m2.json"
        t1, t2 = tmp_path / "t1", tmp_path / "t2"

        self._run(bedpost_dir, t1, store, ["--metrics-out", str(m1)])
        assert "served from store" not in capsys.readouterr().out
        self._run(bedpost_dir, t2, store, ["--metrics-out", str(m2)])
        assert "served from store" in capsys.readouterr().out

        # Every tracking output byte/array-identical between the runs.
        assert (t1 / "lengths.txt").read_bytes() == (
            t2 / "lengths.txt"
        ).read_bytes()
        assert (t1 / "fibers.trk").read_bytes() == (
            t2 / "fibers.trk"
        ).read_bytes()
        np.testing.assert_array_equal(
            read_nifti(t1 / "density.nii.gz").data,
            read_nifti(t2 / "density.nii.gz").data,
        )
        assert det_blob(m1) == det_blob(m2)
        c1, c2 = load_manifest(m1)["cache"], load_manifest(m2)["cache"]
        assert c1["tracking_hit"] is False and c2["tracking_hit"] is True
        assert c1["stage_keys"]["tracking"] == c2["stage_keys"]["tracking"]

    def test_no_cache_recomputes(self, bedpost_dir, tmp_path, capsys):
        store = tmp_path / "store"
        m = tmp_path / "m.json"
        self._run(bedpost_dir, tmp_path / "t1", store, [])
        self._run(
            bedpost_dir, tmp_path / "t2", store,
            ["--no-cache", "--metrics-out", str(m)],
        )
        assert "served from store" not in capsys.readouterr().out
        assert load_manifest(m)["cache"]["tracking_hit"] is False

    def test_replay_partial_stage_reuse(self, bedpost_dir, tmp_path, capsys):
        store = tmp_path / "store"
        m1, m2, m3 = (tmp_path / f"m{i}.json" for i in (1, 2, 3))
        self._run(bedpost_dir, tmp_path / "t1", store,
                  ["--metrics-out", str(m1)])
        capsys.readouterr()

        # --replay resolves the embedded config — telemetry.store
        # included — so the replayed run reuses the published stage.
        assert track_main([
            "--replay", str(m1),
            "--output-dir", str(tmp_path / "t2"),
            "--metrics-out", str(m2),
        ]) == 0
        assert "served from store" in capsys.readouterr().out
        assert load_manifest(m2)["cache"]["tracking_hit"] is True
        assert det_blob(m1) == det_blob(m2)

        # A replayed run with a tracking edit keys a new artifact.
        assert track_main([
            "--replay", str(m1),
            "--set", "tracking.max_steps=60",
            "--output-dir", str(tmp_path / "t3"),
            "--metrics-out", str(m3),
        ]) == 0
        cache = load_manifest(m3)["cache"]
        assert cache["tracking_hit"] is False
        assert (
            cache["stage_keys"]["tracking"]
            != load_manifest(m1)["cache"]["stage_keys"]["tracking"]
        )

    def test_manifest_without_store_has_no_cache_section(
        self, bedpost_dir, tmp_path
    ):
        m = tmp_path / "m.json"
        assert track_main([
            str(bedpost_dir), "--output-dir", str(tmp_path / "t1"),
            "--max-steps", "150", "--metrics-out", str(m),
        ]) == 0
        assert "cache" not in load_manifest(m)
