"""Integration tests: the two-stage workflow end to end on phantoms."""

import numpy as np
import pytest

from repro.data import dataset1, make_gradient_table, rasterize_bundles, straight_bundle, synthesize_dwi
from repro.errors import DataError
from repro.mcmc import MCMCConfig
from repro.pipeline import BedpostConfig, bedpost, run_workflow, tracto
from repro.tracking import ProbtrackConfig, TerminationCriteria, UniformStrategy
from repro.utils.geometry import spherical_to_cartesian


@pytest.fixture(scope="module")
def small_phantom():
    """A tiny straight-bundle acquisition the MCMC can fit quickly."""
    shape = (10, 6, 6)
    b = straight_bundle([1, 3, 3], [8, 3, 3], radius=1.5, weight=0.6)
    field = rasterize_bundles(shape, [b], mask=np.ones(shape, bool))
    gtab = make_gradient_table(n_directions=24, n_b0=2)
    dwi = synthesize_dwi(field, gtab, s0=1000.0, snr=50.0, seed=0)
    # Only fit the bundle voxels: keeps the integration test fast.
    mask = field.f[..., 0] > 0
    return dwi, gtab, mask, field


FAST_MCMC = MCMCConfig(n_burnin=120, n_samples=8, sample_interval=2, adapt_every=30)


class TestBedpost:
    def test_produces_fields_and_recovers_direction(self, small_phantom):
        dwi, gtab, mask, truth = small_phantom
        res = bedpost(dwi, gtab, mask, BedpostConfig(mcmc=FAST_MCMC))
        assert len(res.fields) == 8
        assert res.n_voxels == int(mask.sum())
        # Only ~2 wavefronts of voxels: the device model is mostly idle,
        # so the speedup is modest here (full occupancy is exercised at
        # paper scale in the Table III tests/benches).
        assert res.speedup > 1.0
        assert res.wall_seconds > 0

        # Posterior-mean dominant direction at the bundle core ~ +/-x.
        lay = res.layout
        theta = res.samples[:, :, lay.theta][..., 0]
        phi = res.samples[:, :, lay.phi][..., 0]
        v = spherical_to_cartesian(theta, phi)
        assert np.abs(v[..., 0]).mean() > 0.9

    def test_fields_structure(self, small_phantom):
        dwi, gtab, mask, truth = small_phantom
        res = bedpost(dwi, gtab, mask, BedpostConfig(mcmc=FAST_MCMC))
        fld = res.fields[0]
        assert fld.shape3 == dwi.shape3
        assert fld.n_fibers == 2
        # Fractions live only inside the mask.
        assert np.all(fld.f[~mask] == 0.0)
        assert fld.f[mask][:, 0].mean() > 0.2

    def test_blocking_invariance(self, small_phantom):
        dwi, gtab, mask, _ = small_phantom
        cfg_one = BedpostConfig(mcmc=FAST_MCMC, block_voxels=10_000)
        cfg_blk = BedpostConfig(mcmc=FAST_MCMC, block_voxels=7)
        a = bedpost(dwi, gtab, mask, cfg_one)
        b = bedpost(dwi, gtab, mask, cfg_blk)
        np.testing.assert_allclose(a.samples, b.samples, rtol=1e-10)

    def test_acceptance_adapts_into_band(self, small_phantom):
        dwi, gtab, mask, _ = small_phantom
        res = bedpost(dwi, gtab, mask, BedpostConfig(mcmc=FAST_MCMC))
        assert len(res.acceptance_history) >= 2
        assert 0.1 < res.acceptance_history[-1] < 0.7

    def test_empty_mask_rejected(self, small_phantom):
        dwi, gtab, _, _ = small_phantom
        with pytest.raises(DataError):
            bedpost(dwi, gtab, np.zeros(dwi.shape3, bool))

    def test_mask_shape_rejected(self, small_phantom):
        dwi, gtab, _, _ = small_phantom
        with pytest.raises(DataError):
            bedpost(dwi, gtab, np.ones((2, 2, 2), bool))


class TestWorkflow:
    def test_full_pipeline_tracks_the_bundle(self, small_phantom):
        dwi, gtab, mask, truth = small_phantom
        res = bedpost(dwi, gtab, mask, BedpostConfig(mcmc=FAST_MCMC))
        pt_cfg = ProbtrackConfig(
            criteria=TerminationCriteria(
                max_steps=80, min_dot=0.7, step_length=0.4
            ),
        )
        pt = tracto(res, config=pt_cfg)
        # Streamlines seeded in the bundle must travel along it.
        assert pt.run.lengths.mean() > 3.0
        assert pt.run.longest_fiber > 8
        p = pt.connectivity_probability
        assert p.nnz > 0
        # Seed voxels connect to their along-bundle neighbors with high
        # probability.
        assert p.max() == 1.0

    def test_run_workflow_on_dataset_replica(self):
        ph = dataset1(scale=0.14, snr=40.0)
        # Restrict stage 1 to fiber voxels to keep runtime modest.
        wm = ph.wm_mask
        assert wm.sum() > 20
        bp_cfg = BedpostConfig(
            mcmc=MCMCConfig(n_burnin=80, n_samples=5, sample_interval=1)
        )
        from repro.pipeline.workflow import WorkflowResult
        from repro.pipeline import bedpost as bp_fn

        bp = bp_fn(ph.dwi, ph.gtab, wm, bp_cfg)
        pt = tracto(
            bp,
            config=ProbtrackConfig(
                criteria=TerminationCriteria(
                    max_steps=60, min_dot=0.7, step_length=0.4
                ),
                strategy=UniformStrategy(10),
            ),
        )
        wf = WorkflowResult(bedpost=bp, probtrack=pt)
        report = wf.report()
        assert "stage 1" in report and "stage 2" in report
        assert "speedup" in report
        assert pt.run.total_steps > 0

    def test_workflow_report_surfaces_fault_recovery(self):
        ph = dataset1(scale=0.14, snr=40.0)
        bp_cfg = BedpostConfig(
            mcmc=MCMCConfig(n_burnin=40, n_samples=4, sample_interval=1)
        )
        from repro.pipeline import bedpost as bp_fn
        from repro.pipeline.workflow import WorkflowResult
        from repro.runtime.faults import FaultPlan

        bp = bp_fn(ph.dwi, ph.gtab, ph.wm_mask, bp_cfg)
        pt = tracto(
            bp,
            config=ProbtrackConfig(
                criteria=TerminationCriteria(
                    max_steps=60, min_dot=0.7, step_length=0.4
                ),
                strategy=UniformStrategy(10),
                n_workers=2,
                fault_plan=FaultPlan.parse("crash:0"),
            ),
        )
        report = WorkflowResult(bedpost=bp, probtrack=pt).report()
        assert "fault tolerance (tracking shards)" in report
        assert "retries         1" in report
        assert "shard 0 attempt 0: crash" in report

    def test_run_workflow_helper(self, small_phantom):
        # run_workflow() accepts a Phantom; build one from the fixture.
        from repro.data.phantoms import Phantom

        dwi, gtab, mask, truth = small_phantom
        ph = Phantom(dwi=dwi, gtab=gtab, truth=truth, name="tiny")
        wf = run_workflow(
            ph,
            bedpost_config=BedpostConfig(mcmc=FAST_MCMC),
            probtrack_config=ProbtrackConfig(
                criteria=TerminationCriteria(
                    max_steps=50, min_dot=0.7, step_length=0.4
                )
            ),
            seed_mask=truth.f[..., 0] > 0,
        )
        assert wf.bedpost.n_voxels == int(ph.mask.sum())
        assert wf.probtrack.run.n_seeds == int((truth.f[..., 0] > 0).sum())
