"""Integration tests for the CLI: phantom -> bedpost -> track."""

import json

import numpy as np
import pytest

from repro.cli import bedpost_main, phantom_main, track_main
from repro.io import read_nifti, read_trk


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("cli")


class TestPhantomCommand:
    def test_generates_acquisition(self, workdir):
        rc = phantom_main(
            [
                str(workdir / "data"),
                "--dataset", "dataset1",
                "--scale", "0.15",
                "--snr", "40",
                "--directions", "24",
            ]
        )
        assert rc == 0
        dwi = read_nifti(workdir / "data" / "dwi.nii.gz")
        assert dwi.data.ndim == 4
        assert dwi.data.shape[-1] == 28  # 24 directions + 4 b0
        meta = json.loads((workdir / "data" / "phantom.json").read_text())
        assert meta["dataset"] == "dataset1"
        assert (workdir / "data" / "bvals").exists()
        assert (workdir / "data" / "bvecs").exists()
        mask = read_nifti(workdir / "data" / "wm_mask.nii.gz")
        assert mask.data.sum() == meta["n_wm_voxels"]

    def test_voxel_sizes_scale(self, workdir):
        phantom_main(
            [str(workdir / "d2"), "--dataset", "dataset2", "--scale", "0.1"]
        )
        dwi = read_nifti(workdir / "d2" / "dwi.nii.gz")
        # dataset2 is 2.0 mm at scale 1.0 -> 20 mm at scale 0.1.
        np.testing.assert_allclose(dwi.voxel_sizes, 20.0, rtol=1e-5)


class TestBedpostCommand:
    def test_fits_and_writes(self, workdir):
        rc = bedpost_main(
            [
                str(workdir / "data"),
                "--burnin", "60",
                "--samples", "4",
                "--interval", "1",
            ]
        )
        assert rc == 0
        blob = np.load(workdir / "data" / "bedpost" / "samples.npz")
        assert blob["samples"].shape[0] == 4
        assert blob["samples"].shape[2] == 9
        assert int(blob["n_fibers"]) == 2
        f1 = read_nifti(workdir / "data" / "bedpost" / "mean_f1.nii.gz")
        assert float(f1.data.max()) > 0.2

    def test_rician_option(self, workdir):
        rc = bedpost_main(
            [
                str(workdir / "data"),
                "--output-dir", str(workdir / "bp_rician"),
                "--burnin", "20",
                "--samples", "2",
                "--interval", "1",
                "--noise-model", "rician",
            ]
        )
        assert rc == 0
        assert (workdir / "bp_rician" / "samples.npz").exists()

    def test_inject_fault_recovers_bit_identical(self, workdir, capsys):
        """``--inject-fault crash:0`` exits 0, reports the recovery, and
        writes posterior samples identical to the clean run."""
        common = [
            str(workdir / "data"),
            "--burnin", "20",
            "--samples", "2",
            "--interval", "1",
            "--set", "sampling.block_voxels=40",
        ]
        rc = bedpost_main(common + ["--output-dir", str(workdir / "bp_clean")])
        assert rc == 0
        rc = bedpost_main(
            common
            + [
                "--output-dir", str(workdir / "bp_fault"),
                "--workers", "2",
                "--inject-fault", "crash:0",
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "fault tolerance:" in printed
        assert "1 crash" in printed and "1 retries" in printed
        clean = np.load(workdir / "bp_clean" / "samples.npz")
        faulted = np.load(workdir / "bp_fault" / "samples.npz")
        assert np.array_equal(clean["samples"], faulted["samples"])


class TestTrackCommand:
    def test_tracks_and_exports(self, workdir):
        rc = track_main(
            [
                str(workdir / "data" / "bedpost"),
                "--step", "0.4",
                "--threshold", "0.7",
                "--max-steps", "100",
                "--strategy", "a20",
                "--min-export-steps", "5",
            ]
        )
        assert rc == 0
        out = workdir / "data" / "bedpost" / "track"
        density = read_nifti(out / "density.nii.gz")
        assert float(density.data.sum()) > 0
        lengths = np.loadtxt(out / "lengths.txt")
        assert lengths.ndim in (1, 2)
        lines, meta = read_trk(out / "fibers.trk")
        assert meta["n_count"] == len(lines)

    def test_bidirectional_flag(self, workdir):
        rc = track_main(
            [
                str(workdir / "data" / "bedpost"),
                "--output-dir", str(workdir / "track_bi"),
                "--step", "0.4",
                "--threshold", "0.7",
                "--max-steps", "60",
                "--strategy", "b",
                "--bidirectional",
                "--min-export-steps", "3",
            ]
        )
        assert rc == 0
        uni = np.loadtxt(workdir / "data" / "bedpost" / "track" / "lengths.txt")
        bi = np.loadtxt(workdir / "track_bi" / "lengths.txt")
        n_uni = uni.shape[-1] if uni.ndim > 1 else uni.shape[0]
        n_bi = bi.shape[-1] if bi.ndim > 1 else bi.shape[0]
        assert n_bi == 2 * n_uni

    def test_inject_fault_recovers_bit_identical(self, workdir, capsys):
        """``--inject-fault crash:0`` exits 0, reports the recovery, and
        produces output identical to the clean run."""
        rc = track_main(
            [
                str(workdir / "data" / "bedpost"),
                "--output-dir", str(workdir / "track_fault"),
                "--step", "0.4",
                "--threshold", "0.7",
                "--max-steps", "100",
                "--strategy", "a20",
                "--min-export-steps", "5",
                "--workers", "2",
                "--inject-fault", "crash:0",
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "fault tolerance:" in printed
        assert "1 crash" in printed and "1 retries" in printed
        clean = np.loadtxt(workdir / "data" / "bedpost" / "track" / "lengths.txt")
        faulted = np.loadtxt(workdir / "track_fault" / "lengths.txt")
        assert np.array_equal(clean, faulted)
        d_clean = read_nifti(
            workdir / "data" / "bedpost" / "track" / "density.nii.gz"
        )
        d_faulted = read_nifti(workdir / "track_fault" / "density.nii.gz")
        assert np.array_equal(d_clean.data, d_faulted.data)

    def test_metrics_out_manifest(self, workdir):
        """``--metrics-out`` writes a valid manifest whose deterministic
        section is bit-identical between serial and 4-worker runs."""
        from repro.telemetry import deterministic_sections, load_manifest

        docs = {}
        for n_workers in (1, 4):
            out = workdir / f"track_m{n_workers}"
            rc = track_main(
                [
                    str(workdir / "data" / "bedpost"),
                    "--output-dir", str(out),
                    "--step", "0.4",
                    "--threshold", "0.7",
                    "--max-steps", "100",
                    "--strategy", "a20",
                    "--min-export-steps", "5",
                    "--workers", str(n_workers),
                    "--metrics-out", str(out / "run.json"),
                ]
            )
            assert rc == 0
            docs[n_workers] = load_manifest(out / "run.json")
        for doc in docs.values():
            assert doc["meta"]["command"] == "repro-track"
            assert doc["counters"]["tracking.steps"] > 0
            assert doc["timers"], "stage timers recorded"
        assert json.dumps(
            deterministic_sections(docs[1]), sort_keys=True
        ) == json.dumps(deterministic_sections(docs[4]), sort_keys=True)
        assert docs[4]["ops"]["runtime.shard_attempts"] >= 1

    def test_trace_out_includes_measured_spans(self, workdir):
        rc = track_main(
            [
                str(workdir / "data" / "bedpost"),
                "--output-dir", str(workdir / "track_tr"),
                "--step", "0.4",
                "--threshold", "0.7",
                "--max-steps", "100",
                "--strategy", "a20",
                "--min-export-steps", "5",
                "--workers", "2",
                "--trace-out", str(workdir / "track_tr" / "trace.json"),
            ]
        )
        assert rc == 0
        doc = json.loads((workdir / "track_tr" / "trace.json").read_text())
        rows = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert {"device", "host", "measured:main"} <= rows
        assert any(r.startswith("measured:worker") for r in rows)
        measured = {
            e["name"] for e in doc["traceEvents"] if e.get("cat") == "measured"
        }
        assert "probtrack.track" in measured
        assert "tracking.segment" in measured

    def test_workers_flag_bit_identical(self, workdir):
        rc = track_main(
            [
                str(workdir / "data" / "bedpost"),
                "--output-dir", str(workdir / "track_par"),
                "--step", "0.4",
                "--threshold", "0.7",
                "--max-steps", "100",
                "--strategy", "a20",
                "--min-export-steps", "5",
                "--workers", "2",
            ]
        )
        assert rc == 0
        serial = np.loadtxt(workdir / "data" / "bedpost" / "track" / "lengths.txt")
        par = np.loadtxt(workdir / "track_par" / "lengths.txt")
        assert np.array_equal(serial, par)
        d_serial = read_nifti(
            workdir / "data" / "bedpost" / "track" / "density.nii.gz"
        )
        d_par = read_nifti(workdir / "track_par" / "density.nii.gz")
        assert np.array_equal(d_serial.data, d_par.data)
