"""End-to-end service tests (ISSUE 9 acceptance).

The headline scenario: the same RunSpec submitted twice concurrently and
once after completion triggers exactly one compute, and all three
responses serve manifests whose deterministic sections are bit-identical
to a direct :func:`~repro.pipeline.run_workflow` run of the same spec.

Also covered: queue-full rejection (in-process and as HTTP 429),
cancel-while-running leaving the artifact store uncorrupted, restart
survivability of the job queue and result cache, the HTTP front-end +
client round trip, and (``-m chaos``) fault-injected jobs under the
service.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.config import RunSpec
from repro.data import dataset1
from repro.errors import (
    ConfigurationError,
    JobQueueFullError,
    JobStateError,
    ServiceError,
    UnknownJobError,
)
from repro.pipeline import run_workflow
from repro.service import (
    ServiceClient,
    ServiceConfig,
    TractographyService,
    serve_http,
)
from repro.telemetry import (
    MetricsRegistry,
    build_manifest,
    deterministic_sections,
    use_registry,
)

#: Small-but-real MCMC settings (mirrors the cache-parity suite's scale).
SPEC_DOC = {
    "sampling": {
        "n_burnin": 20,
        "n_samples": 4,
        "sample_interval": 2,
        "adapt_every": 7,
    },
    "tracking": {"max_steps": 48},
}

DATASET = {"name": "dataset1", "scale": 0.12, "snr": 40.0, "seed": 0}

#: Generous terminal-state timeout: one job is sub-second of compute,
#: the rest is scheduler polling and child-process spawn.
WAIT_S = 180.0


def make_config(root, **kw) -> ServiceConfig:
    kw.setdefault("dataset", dict(DATASET))
    kw.setdefault("slots", 2)
    kw.setdefault("queue_limit", 8)
    return ServiceConfig(store_root=str(root), **kw)


def det_blob(manifest: dict) -> str:
    """The bit-identity surface of a manifest, canonically serialized."""
    return json.dumps(deterministic_sections(manifest), sort_keys=True)


def wait_for_state(svc, job_id, state, timeout_s=30.0):
    """Poll until the job reports ``state`` (for catching 'running')."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        view = svc.status(job_id)
        if view["state"] == state:
            return view
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {state!r}")


@pytest.fixture(scope="module")
def direct_manifest():
    """A direct (serviceless) run of SPEC_DOC — the parity reference."""
    phantom = dataset1(
        scale=DATASET["scale"], snr=DATASET["snr"], seed=DATASET["seed"]
    )
    spec = RunSpec.from_dict(SPEC_DOC)
    registry = MetricsRegistry()
    with use_registry(registry):
        wr = run_workflow(phantom, spec=spec, use_cache=False)
    return build_manifest(registry, config=spec.to_dict(), cache=wr.cache)


class TestAcceptance:
    """Same spec twice concurrently + once after -> exactly one compute."""

    @pytest.fixture(scope="class")
    def scenario(self, tmp_path_factory, direct_manifest):
        root = tmp_path_factory.mktemp("svc-acceptance")
        svc = TractographyService(make_config(root))
        # Scheduler not started yet: both submissions are guaranteed
        # to land before the first compute begins ("concurrently").
        first = svc.submit({"spec": SPEC_DOC})
        second = svc.submit({"spec": SPEC_DOC})
        with svc:
            final = svc.wait(first["job_id"], timeout=WAIT_S)
            third = svc.submit({"spec": SPEC_DOC})
            manifests = [
                svc.result(v["job_id"]) for v in (first, second, third)
            ]
            yield {
                "svc": svc,
                "first": first,
                "second": second,
                "third": third,
                "final": final,
                "manifests": manifests,
            }

    def test_concurrent_duplicates_coalesce(self, scenario):
        assert scenario["first"]["job_id"] == scenario["second"]["job_id"]
        assert scenario["first"]["coalesced"] is False
        assert scenario["second"]["coalesced"] is True

    def test_exactly_one_compute(self, scenario):
        assert scenario["final"]["state"] == "done"
        assert scenario["final"]["runs"] == 1
        # the store holds exactly one entry per stage
        store = scenario["svc"].store
        for stage in ("sampling", "tracking"):
            entries = [
                p
                for p in (store.root / stage).iterdir()
                if (p / "entry.json").is_file()
            ]
            assert len(entries) == 1, f"{stage}: {entries}"

    def test_post_completion_submit_is_cache_hit(self, scenario):
        third = scenario["third"]
        assert third["cache_hit"] is True
        assert third["state"] == "done"
        assert third["cache_hits"] >= 1  # flagged in the persisted record

    def test_all_responses_identical(self, scenario):
        a, b, c = scenario["manifests"]
        assert a == b == c

    def test_bitwise_identical_to_direct_run(self, scenario, direct_manifest):
        assert det_blob(scenario["manifests"][0]) == det_blob(direct_manifest)

    def test_manifest_carries_submitted_config(self, scenario):
        manifest = scenario["manifests"][0]
        submitted = RunSpec.from_dict(SPEC_DOC)
        assert manifest["config_hash"] == submitted.content_hash()
        assert manifest["meta"]["job_id"] == scenario["first"]["job_id"]
        assert manifest["meta"]["dataset"] == DATASET
        # the cold compute is recorded: neither stage was a store hit
        assert manifest["cache"]["sampling_hit"] is False
        assert manifest["cache"]["tracking_hit"] is False


class TestBackpressure:
    def test_queue_full_rejects_explicitly(self, tmp_path):
        svc = TractographyService(
            make_config(tmp_path, slots=1, queue_limit=1)
        )
        # scheduler intentionally not started: nothing drains
        svc.submit({"spec": SPEC_DOC})
        other = {**SPEC_DOC, "tracking": {"max_steps": 64}}
        with pytest.raises(JobQueueFullError, match="retry later"):
            svc.submit({"spec": other})
        # the rejected job left no record behind
        assert sum(svc.stats()["jobs"].values()) == 1

    def test_duplicate_of_queued_job_is_not_rejected(self, tmp_path):
        """Coalescing wins over backpressure: a duplicate of an admitted
        job attaches to it even when the queue is at capacity."""
        svc = TractographyService(
            make_config(tmp_path, slots=1, queue_limit=1)
        )
        first = svc.submit({"spec": SPEC_DOC})
        again = svc.submit({"spec": SPEC_DOC})
        assert again["job_id"] == first["job_id"]
        assert again["coalesced"] is True

    def test_invalid_request_rejected_before_admission(self, tmp_path):
        svc = TractographyService(make_config(tmp_path))
        with pytest.raises(ConfigurationError):
            svc.submit({"spec": {"smapling": {}}})
        with pytest.raises(ConfigurationError):
            svc.submit({"spec": SPEC_DOC, "dataset": {"name": "nope"}})
        assert svc.stats()["jobs"] == {}


class TestCancel:
    #: Big enough to still be running when cancel arrives.
    SLOW_DOC = {
        "sampling": {"n_burnin": 2000, "n_samples": 40, "sample_interval": 4},
        "tracking": {"max_steps": 48},
    }

    def test_cancel_running_leaves_store_uncorrupted(self, tmp_path):
        with TractographyService(make_config(tmp_path, slots=1)) as svc:
            view = svc.submit({"spec": self.SLOW_DOC})
            wait_for_state(svc, view["job_id"], "running")
            svc.cancel(view["job_id"])
            final = svc.wait(view["job_id"], timeout=WAIT_S)
            assert final["state"] == "cancelled"
            assert final["manifest_available"] is False
            with pytest.raises(JobStateError):
                svc.result(view["job_id"])
            # the kill corrupted nothing: every published entry re-hashes
            report = svc.store.verify()
            assert report["corrupt"] == []
            # and the service keeps working: a fresh job completes
            ok = svc.submit({"spec": SPEC_DOC})
            assert svc.wait(ok["job_id"], timeout=WAIT_S)["state"] == "done"

    def test_cancel_queued_never_runs(self, tmp_path):
        svc = TractographyService(make_config(tmp_path))
        view = svc.submit({"spec": SPEC_DOC})
        cancelled = svc.cancel(view["job_id"])
        assert cancelled["state"] == "cancelled"
        assert cancelled["runs"] == 0
        # idempotent
        assert svc.cancel(view["job_id"])["state"] == "cancelled"

    def test_resubmit_after_cancel_recomputes(self, tmp_path):
        svc = TractographyService(make_config(tmp_path))
        view = svc.submit({"spec": SPEC_DOC})
        svc.cancel(view["job_id"])
        again = svc.submit({"spec": SPEC_DOC})
        assert again["job_id"] == view["job_id"]
        assert again["state"] == "queued"
        assert again["requeues"] == 1


class TestRestart:
    def test_queue_survives_restart(self, tmp_path):
        first = TractographyService(make_config(tmp_path))
        view = first.submit({"spec": SPEC_DOC})
        first.stop()  # scheduler never ran; job persisted as queued

        second = TractographyService(make_config(tmp_path))
        recovered = second.status(view["job_id"])
        assert recovered["state"] == "queued"
        with second:
            assert (
                second.wait(view["job_id"], timeout=WAIT_S)["state"] == "done"
            )

        # a third instance serves the result cache with no scheduler
        third = TractographyService(make_config(tmp_path))
        hit = third.submit({"spec": SPEC_DOC})
        assert hit["cache_hit"] is True
        assert third.result(view["job_id"])["config_hash"]

    def test_interrupted_running_job_requeues(self, tmp_path):
        svc = TractographyService(make_config(tmp_path))
        view = svc.submit({"spec": SPEC_DOC})
        # simulate dying mid-run: persist the record as running
        rec = svc.jobstore.load(view["job_id"])
        rec.transition("running")
        svc.jobstore.save(rec)

        revived = TractographyService(make_config(tmp_path))
        assert revived.status(view["job_id"])["state"] == "queued"
        assert revived.status(view["job_id"])["requeues"] >= 1


class TestHTTP:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("svc-http")
        svc = TractographyService(make_config(root))
        server = serve_http(svc)
        import threading

        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        with svc:
            yield ServiceClient(server.url), svc
        server.shutdown()
        server.server_close()

    def test_round_trip(self, served):
        client, _ = served
        assert client.health()["ok"] is True
        view = client.submit(SPEC_DOC)
        final = client.wait(view["job_id"], timeout_s=WAIT_S)
        assert final["state"] == "done"
        manifest = client.result(view["job_id"])
        assert manifest["meta"]["job_id"] == view["job_id"]
        # identical resubmission over the wire is a cache hit
        again = client.submit(SPEC_DOC)
        assert again["cache_hit"] is True
        stats = client.stats()
        assert stats["jobs"]["done"] >= 1

    def test_unknown_job_is_404(self, served):
        client, _ = served
        with pytest.raises(UnknownJobError, match="404"):
            client.status("j-doesnotexist")

    def test_invalid_spec_is_400(self, served):
        client, _ = served
        with pytest.raises(ServiceError, match="400"):
            client.submit({"smapling": {"n_samples": 4}})

    def test_result_before_done_is_409(self, tmp_path):
        svc = TractographyService(make_config(tmp_path))  # no scheduler
        server = serve_http(svc)
        import threading

        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            client = ServiceClient(server.url)
            view = client.submit(SPEC_DOC)
            assert view["state"] == "queued"
            with pytest.raises(JobStateError, match="409"):
                client.result(view["job_id"])
        finally:
            server.shutdown()
            server.server_close()

    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        svc = TractographyService(
            make_config(tmp_path, slots=1, queue_limit=1)
        )  # no scheduler: the queue cannot drain
        server = serve_http(svc)
        import threading

        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            client = ServiceClient(server.url)
            client.submit(SPEC_DOC)
            other = {**SPEC_DOC, "tracking": {"max_steps": 64}}
            with pytest.raises(JobQueueFullError, match="429"):
                client.submit(other)
            # raw check: the 429 carries Retry-After
            req = urllib.request.Request(
                server.url + "/jobs",
                data=json.dumps({"spec": other}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=10)
            assert err.value.code == 429
            assert err.value.headers["Retry-After"] is not None
        finally:
            server.shutdown()
            server.server_close()


@pytest.mark.chaos
class TestServiceChaos:
    """Fault injection *under the service*: jobs recover or fail cleanly."""

    FAULT_DOC = {
        **SPEC_DOC,
        "runtime": {"n_workers": 2, "fault_plan": "crash:0"},
    }

    def test_injected_crash_recovers_bit_identical(
        self, tmp_path, direct_manifest
    ):
        """A job whose shard 0 crashes on first attempt must retry,
        complete, and serve a manifest bit-identical to the clean direct
        run.  The store is fresh so the faulted job really computes
        (a warm store would serve hits and never exercise the fault).
        The explicit worker budget keeps the clamp from forcing the job
        serial (faults only fire on the sharded path)."""
        with TractographyService(
            make_config(tmp_path, slots=1, worker_budget=2)
        ) as svc:
            view = svc.submit({"spec": self.FAULT_DOC})
            final = svc.wait(view["job_id"], timeout=WAIT_S)
            assert final["state"] == "done", final.get("error")
            manifest = svc.result(view["job_id"])
            assert det_blob(manifest) == det_blob(direct_manifest)
            assert svc.store.verify()["corrupt"] == []

    def test_unrecoverable_fault_fails_cleanly(self, tmp_path):
        # Sample-targeted fault: whichever shard owns sample 0 crashes
        # on every attempt, and re-sharding cannot isolate it away; with
        # the serial fallback off the stage exhausts its pool.
        doc = {
            **SPEC_DOC,
            "runtime": {
                "n_workers": 2,
                "fault_plan": "crash:s0:*",
                "max_retries": 1,
                "fallback_to_serial": False,
            },
        }
        with TractographyService(
            make_config(tmp_path, slots=1, worker_budget=2)
        ) as svc:
            view = svc.submit({"spec": doc})
            final = svc.wait(view["job_id"], timeout=WAIT_S)
            assert final["state"] == "failed"
            assert final["error"]
            with pytest.raises(JobStateError):
                svc.result(view["job_id"])
            # the failure poisoned nothing: a clean job still completes
            ok = svc.submit({"spec": SPEC_DOC})
            assert svc.wait(ok["job_id"], timeout=WAIT_S)["state"] == "done"
