"""End-to-end provenance: ``--metrics-out`` then ``--replay``.

The acceptance loop for the configuration layer: run ``repro-track``
with a manifest output, replay that manifest with ``--replay``, and the
second run must reproduce the first bit for bit — zero deltas in the
deterministic sections and an identical config hash (the hash ignores
the telemetry section, so writing the replay's manifest elsewhere does
not break the match).
"""

import json

import pytest

from repro.analysis import compare_manifests
from repro.cli.bedpost_cmd import main as bedpost_main
from repro.cli.phantom_cmd import main as phantom_main
from repro.cli.track_cmd import main as track_main
from repro.config import HAVE_TOML, RunSpec
from repro.telemetry import MANIFEST_SCHEMA, load_manifest, manifest_config


@pytest.fixture(scope="module")
def bedpost_dir(tmp_path_factory):
    """A tiny phantom taken through stage 1 once for the whole module."""
    root = tmp_path_factory.mktemp("replay")
    data = root / "data"
    phantom_main([str(data), "--scale", "0.2", "--directions", "9"])
    bedpost_main([str(data), "--burnin", "40", "--samples", "4"])
    return data / "bedpost"


def run_track(bedpost_dir, out_dir, extra):
    args = [str(bedpost_dir), "--output-dir", str(out_dir), "--max-steps", "150"]
    assert track_main(args + extra) == 0


class TestReplay:
    def test_replay_reproduces_deterministic_sections(
        self, bedpost_dir, tmp_path
    ):
        m1, m2 = tmp_path / "m1.json", tmp_path / "m2.json"
        run_track(
            bedpost_dir, tmp_path / "t1",
            ["--workers", "2", "--metrics-out", str(m1)],
        )
        # Replay: no positional bedpost_dir, different outputs everywhere.
        assert track_main([
            "--replay", str(m1),
            "--output-dir", str(tmp_path / "t2"),
            "--metrics-out", str(m2),
        ]) == 0

        a, b = load_manifest(m1), load_manifest(m2)
        diff = compare_manifests(a, b)
        assert diff.identical
        assert diff.counter_diffs == {} and diff.histogram_diffs == []
        assert diff.config_hash_match is True
        assert a["config_hash"] == b["config_hash"]
        # Only the telemetry routing may differ between the two configs.
        assert all(p.startswith("telemetry.") for p in diff.config_diffs)
        assert b["meta"]["replayed_from"] == str(m1)

    def test_replay_with_set_override_diverges_and_reports(
        self, bedpost_dir, tmp_path
    ):
        m1, m2 = tmp_path / "m1.json", tmp_path / "m2.json"
        run_track(bedpost_dir, tmp_path / "t1", ["--metrics-out", str(m1)])
        assert track_main([
            "--replay", str(m1),
            "--set", "tracking.max_steps=60",
            "--output-dir", str(tmp_path / "t2"),
            "--metrics-out", str(m2),
        ]) == 0
        diff = compare_manifests(load_manifest(m1), load_manifest(m2))
        assert diff.config_hash_match is False
        assert diff.config_diffs["tracking.max_steps"] == (150, 60)

    def test_manifest_carries_valid_provenance(self, bedpost_dir, tmp_path):
        m1 = tmp_path / "m1.json"
        run_track(bedpost_dir, tmp_path / "t1", ["--metrics-out", str(m1)])
        doc = load_manifest(m1)
        assert doc["schema"] == MANIFEST_SCHEMA
        spec = manifest_config(doc)
        assert isinstance(spec, RunSpec)
        assert spec.tracking.max_steps == 150
        assert doc["meta"]["bedpost_dir"] == str(bedpost_dir.resolve())

    def test_replay_rejects_v1_manifest(self, bedpost_dir, tmp_path, capsys):
        m1 = tmp_path / "m1.json"
        run_track(bedpost_dir, tmp_path / "t1", ["--metrics-out", str(m1)])
        doc = load_manifest(m1)
        doc["schema"] = "repro.telemetry.manifest/1"
        doc.pop("config")
        doc.pop("config_hash")
        v1 = tmp_path / "v1.json"
        v1.write_text(json.dumps(doc))
        with pytest.raises(SystemExit):
            track_main(["--replay", str(v1)])
        assert "no config section" in capsys.readouterr().err

    def test_replay_and_config_mutually_exclusive(self, tmp_path, capsys):
        cfg = tmp_path / "spec.json"
        cfg.write_text("{}")
        with pytest.raises(SystemExit):
            track_main(["--replay", str(cfg), "--config", str(cfg)])
        assert "mutually exclusive" in capsys.readouterr().err


class TestConfigFileCLI:
    def test_config_file_drives_run(self, bedpost_dir, tmp_path, capsys):
        cfg = tmp_path / "spec.json"
        cfg.write_text(json.dumps({
            "tracking": {"max_steps": 90, "strategy": "b"},
            "runtime": {"n_workers": 2},
        }))
        m1 = tmp_path / "m1.json"
        assert track_main([
            str(bedpost_dir),
            "--config", str(cfg),
            "--output-dir", str(tmp_path / "t1"),
            "--metrics-out", str(m1),
        ]) == 0
        capsys.readouterr()
        spec = manifest_config(load_manifest(m1))
        assert spec.tracking.max_steps == 90
        assert spec.tracking.strategy == "b"
        assert spec.runtime.n_workers == 2

    def test_print_config_matches_manifest_hash(self, tmp_path, capsys):
        cfg = tmp_path / "spec.json"
        cfg.write_text(json.dumps({"tracking": {"max_steps": 90}}))
        assert track_main(["--config", str(cfg), "--print-config"]) == 0
        printed = json.loads(capsys.readouterr().out)
        expected = RunSpec().with_overrides({"tracking.max_steps": 90})
        assert printed["config_hash"] == expected.content_hash()
        assert printed["config"] == expected.to_dict()

    @pytest.mark.skipif(not HAVE_TOML, reason="no tomllib/tomli available")
    def test_toml_config_file(self, tmp_path, capsys):
        cfg = tmp_path / "spec.toml"
        cfg.write_text(
            "[tracking]\nmax_steps = 90\nstrategy = \"c\"\n"
            "[runtime]\nn_workers = 3\n"
        )
        assert track_main(["--config", str(cfg), "--print-config"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["config"]["tracking"]["max_steps"] == 90
        assert printed["config"]["tracking"]["strategy"] == "c"
        assert printed["config"]["runtime"]["n_workers"] == 3

    def test_bedpost_print_config(self, capsys):
        assert bedpost_main([
            "--set", "sampling.n_samples=7", "--print-config"
        ]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["config"]["sampling"]["n_samples"] == 7
