"""Reconstructing the corpus callosum (paper Figs 9, 11, 12).

Builds the dataset-2 replica (whose dominant structure is a
corpus-callosum-like arch), runs the probabilistic pipeline seeded at the
arch, and exports:

* ``outputs/cc_fibers.trk``   — the reconstructed long fibers (TrackVis),
* ``outputs/cc_visits.nii.gz`` — the visit-count density map (NIfTI),

then verifies the reconstruction geometrically against the ground-truth
bundle (the phantom's substitute for the paper's visual comparison with
McGraw & Nadar's published results).

Run:  python examples/corpus_callosum.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.baselines import cpu_probabilistic_tracking
from repro.data import dataset2
from repro.io import Volume, write_nifti, write_trk
from repro.tracking import (
    ConnectivityAccumulator,
    SegmentedTracker,
    TerminationCriteria,
    paper_strategy_b,
    seeds_from_mask,
)
from repro.utils.geometry import normalize

LONG_FIBER = 100  # the paper's Figs 11/12 length threshold (steps)


def perturbed_samples(phantom, n_samples, angular_noise=0.08, seed=0):
    """Posterior-like sample volumes around the ground truth."""
    rng = np.random.default_rng(seed)
    truth = phantom.truth
    fields = []
    from repro.models.fields import FiberField

    for _ in range(n_samples):
        has = truth.f > 0
        noise = rng.normal(scale=angular_noise, size=truth.directions.shape)
        dirs = normalize(truth.directions + noise * has[..., None]) * has[..., None]
        fields.append(
            FiberField(f=truth.f.copy(), directions=dirs, mask=truth.mask)
        )
    return fields


def main() -> None:
    phantom = dataset2(scale=0.35, snr=40.0)
    truth = phantom.truth
    cc = phantom.bundles[0]
    assert cc.name == "corpus_callosum"
    print(f"{phantom.name}: grid {truth.shape3}, CC arc length "
          f"{cc.length:.0f} voxels")

    # Seed the arch only (Fig 9 tracks the CC specifically).
    seeds_all = seeds_from_mask(phantom.wm_mask)
    dense = cc.resample(0.5)
    d2 = ((seeds_all[:, None, :] - dense.points[None, :, :]) ** 2).sum(-1)
    near = d2.min(axis=1) <= (float(np.max(dense.radius)) + 0.5) ** 2
    seeds = seeds_all[near]
    print(f"seeds on the corpus callosum: {len(seeds)}")

    fields = perturbed_samples(phantom, n_samples=8)
    criteria = TerminationCriteria(max_steps=888, min_dot=0.85, step_length=0.2)
    acc = ConnectivityAccumulator(len(seeds), int(np.prod(truth.shape3)))
    run = SegmentedTracker().run(
        fields, seeds, criteria, paper_strategy_b(), connectivity=acc
    )

    long_mask = run.lengths.max(axis=0) >= LONG_FIBER
    print(f"fibers with length >= {LONG_FIBER}: {int(long_mask.sum())} "
          f"of {len(seeds)} seeds (longest {run.longest_fiber})")

    # Geometric check: tracked paths stay inside the painted arch tube.
    cpu = cpu_probabilistic_tracking(
        fields[:1], seeds[long_mask][:20], criteria, keep_streamlines=True
    )
    max_dev = 0.0
    for line in cpu.streamlines[0]:
        d2 = ((line.points[:, None, :] - dense.points[None, :, :]) ** 2).sum(-1)
        max_dev = max(max_dev, float(np.sqrt(d2.min(axis=1)).max()))
    tube = float(np.max(dense.radius))
    print(f"max deviation of long fibers from the CC centerline: "
          f"{max_dev:.1f} voxels (tube radius {tube:.1f})")
    assert max_dev < tube + 2.0, "reconstruction strayed from the bundle"

    # Paper's Fig 12 check: CPU and lockstep (GPU-structure) agree.
    gpu_first = run.lengths[0][long_mask][:20]
    cpu_first = cpu.lengths[0]
    assert np.array_equal(np.sort(gpu_first), np.sort(cpu_first)) or np.array_equal(
        gpu_first, cpu_first
    )
    print("CPU and lockstep tracking produce identical lengths (Fig 12)")

    # Bundle the long fibers (QuickBundles-style MDF clustering): the
    # CC reconstruction should collapse into a handful of coherent
    # bundles rather than scatter.
    from repro.tracking import quickbundles

    long_paths = [s.points for s in cpu.streamlines[0] if s.n_steps >= LONG_FIBER]
    if long_paths:
        clusters = quickbundles(long_paths, threshold=4.0)
        sizes = [c.size for c in clusters[:5]]
        print(f"bundling: {len(clusters)} clusters over {len(long_paths)} "
              f"long fibers (largest: {sizes})")

    out = Path(__file__).resolve().parent / "outputs"
    out.mkdir(exist_ok=True)
    lines = [s.points for s in cpu.streamlines[0] if s.n_steps >= LONG_FIBER]
    write_trk(
        out / "cc_fibers.trk",
        lines,
        voxel_sizes=tuple(phantom.dwi.voxel_sizes),
        dims=truth.shape3,
    )
    visits = acc.visit_count_volume(truth.shape3).astype(np.float32)
    write_nifti(out / "cc_visits.nii.gz", Volume(visits, phantom.dwi.affine))
    print(f"wrote {out / 'cc_fibers.trk'} ({len(lines)} long fibers) and "
          f"{out / 'cc_visits.nii.gz'}")


if __name__ == "__main__":
    main()
