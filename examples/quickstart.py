"""Quickstart: the full Fig 1 workflow on a dataset-1 replica.

Generates a scaled synthetic acquisition, runs stage 1 (per-voxel MCMC
over the multi-fiber model) and stage 2 (probabilistic streamlining with
the paper's increasing-interval segmentation), then prints both stages'
functional results and machine-model speedups.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.data import dataset1
from repro.mcmc import MCMCConfig
from repro.pipeline import BedpostConfig, run_workflow
from repro.tracking import ProbtrackConfig, TerminationCriteria


def main() -> None:
    # A small replica: same geometry as the paper's dataset 1
    # (48 x 96 x 96 @ 2.5 mm), scaled so the demo finishes in ~a minute.
    phantom = dataset1(scale=0.2, snr=40.0)
    print(f"phantom: {phantom.name}, grid {phantom.dwi.shape3}, "
          f"{phantom.n_valid} valid voxels, "
          f"{int(phantom.wm_mask.sum())} fiber voxels")

    result = run_workflow(
        phantom,
        bedpost_config=BedpostConfig(
            # The paper's schedule is burn-in 500 / 50 samples; this demo
            # uses a shorter chain for speed.
            mcmc=MCMCConfig(n_burnin=150, n_samples=10, sample_interval=2),
        ),
        probtrack_config=ProbtrackConfig(
            criteria=TerminationCriteria(
                max_steps=200, min_dot=0.8, step_length=0.3
            ),
        ),
        # Fit and seed only the fiber-bearing voxels (like masking to
        # white matter on a real scan).
        fit_mask=phantom.wm_mask,
        seed_mask=phantom.wm_mask,
    )
    print()
    print(result.report())

    # Connectivity: how many voxels each seed reaches with P > 0.5.
    p = result.probtrack.connectivity_probability
    strong = (p > 0.5).sum(axis=1)
    print()
    print(f"connectivity: median voxels reached with P>0.5: "
          f"{int(strong.mean())} per seed")
    if result.probtrack.length_fit is not None:
        fit = result.probtrack.length_fit
        print(f"fiber lengths: mean {fit.mean:.1f} steps, "
              f"semi-log R^2 {fit.r_squared:.2f} (exponential: Fig 5)")


if __name__ == "__main__":
    main()
