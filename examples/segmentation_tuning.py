"""Tuning the segmentation strategy (paper § IV-B, Tables IV).

Shows the library as a *tool*: track once to measure the fiber-length
distribution, inspect its exponential fit, then compare segmentation
strategies — the paper's A_k family, its hand-picked B/C arrays, and an
auto-generated geometric ladder — on the machine model at any target
scale, and pick a winner.

Run:  python examples/segmentation_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    project_tracking_times,
    render_table,
    utilization_report,
)
from repro.data import dataset1
from repro.gpu.presets import PHENOM_X4, RADEON_5870
from repro.models.fields import FiberField
from repro.tracking import (
    IncreasingStrategy,
    SegmentedTracker,
    SingleSegmentStrategy,
    TerminationCriteria,
    UniformStrategy,
    fit_exponential,
    increasing_intervals,
    paper_strategy_b,
    paper_strategy_c,
    seeds_from_mask,
)

MAX_STEPS = 888
TARGET_THREADS = 205_082  # tune for the paper's dataset-1 seed count


def noisy_fields(phantom, n, scale=0.3, seed=0):
    rng = np.random.default_rng(seed)
    truth = phantom.truth
    out = []
    for _ in range(n):
        has = truth.f > 0
        noise = rng.normal(scale=scale, size=truth.directions.shape)
        d = truth.directions + noise * has[..., None]
        d /= np.maximum(np.linalg.norm(d, axis=-1, keepdims=True), 1e-12)
        out.append(FiberField(f=truth.f.copy(), directions=d * has[..., None],
                              mask=truth.mask))
    return out


def main() -> None:
    phantom = dataset1(scale=0.3, snr=40.0)
    seeds = seeds_from_mask(phantom.wm_mask)
    fields = noisy_fields(phantom, 6)
    criteria = TerminationCriteria(max_steps=MAX_STEPS, min_dot=0.8, step_length=0.2)

    # 1. Measure the length distribution once.
    run = SegmentedTracker().run(fields, seeds, criteria, paper_strategy_b())
    fit = fit_exponential(run.lengths.ravel(), truncate_at=float(MAX_STEPS))
    print(f"measured {run.lengths.size} fibers: mean {fit.mean:.1f} steps, "
          f"rate {fit.rate:.4f}, semi-log R^2 {fit.r_squared:.2f}")

    # 2. Fig 6 view: how much hardware each strategy family wastes.
    strategies = [
        SingleSegmentStrategy(),
        UniformStrategy(1),
        UniformStrategy(10),
        UniformStrategy(50),
        paper_strategy_b(),
        paper_strategy_c(),
        IncreasingStrategy(
            increasing_intervals(MAX_STEPS, first=1, ratio=2.0), name="gen(r=2)"
        ),
        IncreasingStrategy(
            increasing_intervals(MAX_STEPS, first=2, ratio=3.0), name="gen(r=3)"
        ),
    ]
    util = utilization_report(run.lengths[0], strategies, MAX_STEPS)
    print()
    print(render_table(
        ["Strategy", "Segments", "Utilization"],
        [[u.strategy, u.n_segments, f"{u.utilization:.3f}"] for u in util],
        title="SIMD utilization per strategy (Fig 6 geometry)",
    ))

    # 3. Machine-model totals at the paper's scale; pick the winner.
    rows = []
    for strat in strategies:
        p = project_tracking_times(
            run.lengths, strat.segments(MAX_STEPS), RADEON_5870, PHENOM_X4,
            target_threads=TARGET_THREADS,
            image_bytes_per_sample=48 * 96 * 96 * 2 * 4 * 4,
        )
        rows.append([strat.name, len(strat.segments(MAX_STEPS)),
                     round(p.kernel_s, 2), round(p.transfer_s, 2),
                     round(p.total_s, 2), round(p.speedup, 1)])
    rows.sort(key=lambda r: r[4])
    print()
    print(render_table(
        ["Strategy", "Segments", "Kernel(s)", "Transfer(s)", "Total(s)", "Speedup"],
        rows,
        title=f"Projected cost at {TARGET_THREADS} seeds (best first)",
    ))
    print(f"\nrecommended strategy: {rows[0][0]}")


if __name__ == "__main__":
    main()
