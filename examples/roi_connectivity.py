"""Seed-to-target ROI connectivity and schedule visualization.

Asks a targeted clinical-style question on the dataset-1 replica: *what
is the probability that streamlines seeded in region A reach region B?*
— evaluated exactly per posterior sample via :class:`TargetCounter`
(paper Eq. 3 for a region target), alongside the full connectivity
matrix.  Also renders the run's modeled execution schedule as an ASCII
Gantt chart (Figs 7/8) and exports a Chrome trace.

Run:  python examples/roi_connectivity.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis import render_gantt
from repro.data import dataset1
from repro.gpu import write_chrome_trace
from repro.models.fields import FiberField
from repro.tracking import (
    ConnectivityAccumulator,
    SegmentedTracker,
    TargetCounter,
    TerminationCriteria,
    VisitFanout,
    paper_strategy_b,
    seeds_from_mask,
    sphere_roi,
)
from repro.utils.geometry import normalize


def noisy_fields(phantom, n, scale=0.15, seed=0):
    rng = np.random.default_rng(seed)
    truth = phantom.truth
    out = []
    for _ in range(n):
        has = truth.f > 0
        d = normalize(
            truth.directions + rng.normal(scale=scale, size=truth.directions.shape)
            * has[..., None]
        )
        out.append(
            FiberField(f=truth.f.copy(), directions=d * has[..., None],
                       mask=truth.mask)
        )
    return out


def main() -> None:
    phantom = dataset1(scale=0.3, snr=40.0)
    shape = phantom.truth.shape3
    nx, ny, nz = shape

    # Seed region: a sphere at one end of the long association tract;
    # target: a sphere at the other end.  (The tract runs along y at
    # x ~ 0.35 nx, z ~ 0.45 nz -- see repro/data/datasets.py.)
    seed_roi = sphere_roi(shape, (0.35 * nx, 0.2 * ny, 0.45 * nz), 2.5)
    target_roi = sphere_roi(shape, (0.35 * nx, 0.8 * ny, 0.45 * nz), 3.5)
    control_roi = sphere_roi(shape, (0.8 * nx, 0.5 * ny, 0.8 * nz), 3.5)
    seed_mask = seed_roi & phantom.wm_mask
    seeds = seeds_from_mask(seed_mask)
    print(f"seeds in ROI A: {len(seeds)}; target B: {int(target_roi.sum())} "
          f"voxels; control C: {int(control_roi.sum())} voxels")

    fields = noisy_fields(phantom, 10)
    criteria = TerminationCriteria(max_steps=400, min_dot=0.8, step_length=0.3)

    acc = ConnectivityAccumulator(len(seeds), int(np.prod(shape)))
    to_target = TargetCounter(len(seeds), target_roi)
    to_control = TargetCounter(len(seeds), control_roi)
    run = SegmentedTracker().run(
        fields, seeds, criteria, paper_strategy_b(),
        connectivity=VisitFanout([acc, to_target, to_control]),
    )

    p_target = to_target.probability()
    p_control = to_control.probability()
    print(f"P(A -> B): mean {p_target.mean():.2f} over seeds "
          f"(max {p_target.max():.2f})")
    print(f"P(A -> C): mean {p_control.mean():.2f} (off-tract control)")

    # Schedule views.
    print()
    print(render_gantt(run.timeline, width=70, schedule="serial"))
    out = Path(__file__).resolve().parent / "outputs"
    out.mkdir(exist_ok=True)
    write_chrome_trace(out / "schedule.json", run.timeline)
    print(f"\nwrote Chrome trace to {out / 'schedule.json'} "
          f"(open in chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    main()
