"""Inspecting the MCMC sampler (paper Fig 2 and § IV-A).

Runs the Metropolis-Hastings sampler on a handful of voxels, shows the
acceptance-rate trajectory entering the paper's 25-50 % band under the
windowed adaptation, and reports quantitative convergence diagnostics
(effective sample size, Geweke z, split-R-hat across independently
seeded chains) for the physically meaningful parameters.

Run:  python examples/mcmc_diagnostics.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.data import make_gradient_table
from repro.mcmc import (
    MCMCConfig,
    MCMCSampler,
    effective_sample_size,
    geweke_zscore,
    split_rhat,
)
from repro.models import LogPosterior, MultiFiberModel


def synthetic_voxels(gtab, n=6, seed=0):
    """Voxels with a known single dominant fiber along +x."""
    rng = np.random.default_rng(seed)
    model = MultiFiberModel(2)
    mu = model.predict(
        gtab,
        s0=np.full(n, 1000.0),
        d=np.full(n, 1e-3),
        f=np.tile([0.55, 0.0], (n, 1)),
        theta=np.tile([np.pi / 2, 1.0], (n, 1)),
        phi=np.tile([0.0, 1.0], (n, 1)),
    )
    return mu + rng.normal(scale=20.0, size=mu.shape)


def main() -> None:
    gtab = make_gradient_table(n_directions=32, n_b0=4)
    data = synthetic_voxels(gtab)
    post = LogPosterior(gtab, data)
    cfg = MCMCConfig(n_burnin=800, n_samples=150, sample_interval=4,
                     adapt_every=40, seed=0)
    res = MCMCSampler(cfg).run(post)

    print("acceptance-rate trajectory (one value per adaptation window, "
          "target band 25-50%):")
    bars = "".join(
        "#" if 0.25 <= a <= 0.5 else "." for a in res.acceptance_history
    )
    print("  " + " ".join(f"{a:.2f}" for a in res.acceptance_history[:12]) + " ...")
    print(f"  in-band windows: [{bars}]")

    # Physically meaningful, label-invariant summaries: the two stick
    # compartments can swap indices between samples ("label switching"),
    # so per-slot chains like f1 alone are not identified -- diagnose the
    # total stick fraction, diffusivity, and noise level instead.
    lay = post.layout
    f_total = res.samples[:, 0, lay.f].sum(axis=1)
    chains = {
        "f1+f2": f_total,
        "d": res.samples[:, 0, lay.d],
        "sigma": res.samples[:, 0, lay.sigma],
    }
    rows = []
    for name, chain in chains.items():
        rows.append([
            name,
            round(float(chain.mean()), 4),
            round(effective_sample_size(chain), 1),
            round(geweke_zscore(chain), 2),
        ])
    print()
    print(render_table(
        ["Parameter", "Posterior mean", "ESS", "Geweke z"],
        rows,
        title=f"Diagnostics for voxel 0 ({res.samples.shape[0]} samples, "
        f"thinning L={cfg.sample_interval})",
    ))

    # Multi-chain agreement on the label-invariant statistic.
    multi = [f_total]
    for seed in (1, 2, 3):
        cfg_s = MCMCConfig(n_burnin=800, n_samples=150, sample_interval=4,
                           adapt_every=40, seed=seed)
        r = MCMCSampler(cfg_s).run(post)
        multi.append(r.samples[:, 0, lay.f].sum(axis=1))
    rhat = split_rhat(np.array(multi))
    print(f"\nsplit-R-hat of f1+f2 across 4 independently seeded chains: "
          f"{rhat:.3f} (convergence: < ~1.1)")

    # The true total stick fraction was 0.55; report recovery.
    recovered = res.samples[:, :, lay.f].sum(axis=2).mean()
    print(f"recovered total stick fraction = {recovered:.3f} (true 0.55)")


if __name__ == "__main__":
    main()
