"""Deterministic vs. probabilistic tracking at a fiber crossing.

The paper's introduction motivates the probabilistic multi-fiber
framework with exactly this failure mode: a single-tensor deterministic
tracker cannot represent two fiber populations in one voxel, so at a
crossing the tensor turns planar, FA collapses, and tracking either stops
or veers.  The multi-fiber pipeline carries both populations and passes
straight through.

Run:  python examples/crossing_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import deterministic_tractography
from repro.data import crossing_pair, make_gradient_table, rasterize_bundles, synthesize_dwi
from repro.mcmc import MCMCConfig
from repro.pipeline import BedpostConfig, bedpost
from repro.tracking import (
    SegmentedTracker,
    TerminationCriteria,
    paper_strategy_b,
)


def main() -> None:
    # Two bundles crossing at 60 degrees: oblique crossings are where
    # the single-tensor model fails hardest -- the fitted principal
    # direction becomes a weighted average of the two populations, so the
    # deterministic tracker veers off both bundles.
    shape = (30, 30, 8)
    center = np.array([15.0, 15.0, 4.0])
    b1, b2 = crossing_pair(center, half_length=13.0, angle=np.deg2rad(60),
                           radius=2.0, weight=0.45)
    truth = rasterize_bundles(shape, [b1, b2], mask=np.ones(shape, bool))
    # b = 2000 s/mm^2: crossing resolution needs stronger diffusion
    # weighting than the tensor-era b = 1000 (Behrens 2007 makes the
    # same point about when the second fiber "can be gained").
    gtab = make_gradient_table(n_directions=48, bvalue=2000.0, n_b0=4)
    dwi = synthesize_dwi(truth, gtab, snr=40.0, seed=0)

    # Seed on bundle 1 (the x-aligned tract), left of the crossing, and
    # launch toward the crossing (+x).  Seed-direction signs are
    # otherwise arbitrary, so production pipelines track both senses.
    seeds = np.array([[4.0, 15.0, 4.0]])
    toward = np.array([[1.0, 0.0, 0.0]])

    # --- deterministic baseline -----------------------------------------
    from repro.baselines.deterministic import tensor_field
    from repro.tracking import BatchTracker

    det_field, _ = tensor_field(dwi, gtab, truth.mask)
    det_crit = TerminationCriteria(max_steps=400, min_dot=0.8,
                                   step_length=0.3, f_threshold=0.25)

    from repro.tracking import track_streamline

    det_line = track_streamline(det_field, seeds[0], toward[0], det_crit)
    det_dev = float(np.abs(det_line.points[:, 1] - 15.0).max())
    print(f"deterministic: {det_line.n_steps} steps, end "
          f"(x={det_line.end[0]:.1f}, y={det_line.end[1]:.1f}); "
          f"max |y - 15| deviation from bundle 1: {det_dev:.1f} voxels")

    # --- probabilistic multi-fiber pipeline ------------------------------
    bp = bedpost(
        dwi, gtab, truth.f[..., 0] > 0,
        BedpostConfig(mcmc=MCMCConfig(n_burnin=400, n_samples=8,
                                      sample_interval=2)),
    )
    run = SegmentedTracker().run(
        bp.fields, seeds,
        TerminationCriteria(max_steps=400, min_dot=0.8, step_length=0.3),
        paper_strategy_b(),
        headings=toward,
    )
    lengths = sorted(int(x) for x in run.lengths[:, 0])
    print(f"probabilistic: per-sample lengths {lengths}")

    # How far along x do probabilistic streamlines reach?  Re-track with
    # kept paths for the geometric answer.

    class _Paths:
        streamlines = [
            [track_streamline(
                f, seeds[0], toward[0],
                TerminationCriteria(max_steps=400, min_dot=0.8, step_length=0.3),
            )]
            for f in bp.fields
        ]

    cpu = _Paths()
    max_x = max(s[0].points[:, 0].max() for s in cpu.streamlines)
    frac_through = float(np.mean(
        [s[0].points[:, 0].max() > 17.0 for s in cpu.streamlines]
    ))
    prob_dev = float(np.mean(
        [np.abs(s[0].points[:, 1] - 15.0).max() for s in cpu.streamlines]
    ))
    print(f"probabilistic: deepest reach x={max_x:.1f}; "
          f"{frac_through * 100:.0f}% of samples cross beyond x=17; "
          f"mean max |y - 15| deviation: {prob_dev:.1f} voxels")

    if frac_through > 0.5 and prob_dev < det_dev:
        print("\n=> the deterministic tracker veers onto the averaged "
              "tensor direction at the crossing; the multi-fiber "
              "probabilistic tracker maintains the streamline's "
              "orientation and passes through (paper sections I, III-B2).")
    else:
        print("\n(note: outcome depends on noise draw; see tests for the "
              "statistically robust version)")


if __name__ == "__main__":
    main()
