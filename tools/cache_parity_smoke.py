#!/usr/bin/env python
"""Cache-parity smoke: cold run, warm run, zero deterministic deltas.

The CI-facing distillation of the artifact-store contract (ISSUE 7):

1. run the full workflow cold into a fresh store;
2. run it again warm (both stages must be served from the store);
3. assert the warm run's deterministic manifest sections and tracking
   outputs are bit-identical to the cold run's;
4. sweep three tracking configurations over the shared sampling entry
   and assert MCMC ran exactly once.

Exits non-zero (with a diff summary) on any violation.  Usage::

    PYTHONPATH=src python tools/cache_parity_smoke.py [store_dir]
"""

import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.config import RunSpec
from repro.data import dataset1
from repro.pipeline import run_workflow
from repro.store import ArtifactStore
from repro.telemetry import (
    MetricsRegistry,
    build_manifest,
    deterministic_sections,
    use_registry,
)

BASE = {
    "sampling": {
        "n_burnin": 30,
        "n_samples": 4,
        "sample_interval": 2,
        "adapt_every": 7,
    },
    "tracking": {"max_steps": 64},
}


def run(phantom, store_root, **edits):
    doc = json.loads(json.dumps(BASE))
    for section, fields in edits.items():
        doc.setdefault(section, {}).update(fields)
    doc.setdefault("telemetry", {})["store"] = str(store_root)
    spec = RunSpec.from_dict(doc)
    registry = MetricsRegistry()
    with use_registry(registry):
        wr = run_workflow(phantom, spec=spec)
    manifest = build_manifest(registry, config=spec.to_dict(), cache=wr.cache)
    return wr, manifest


def det_blob(manifest):
    return json.dumps(deterministic_sections(manifest), sort_keys=True)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    store_root = Path(argv[0]) if argv else Path(tempfile.mkdtemp()) / "store"
    phantom = dataset1(scale=0.15, snr=40.0)

    print(f"cache-parity smoke: store at {store_root}")
    cold, cold_manifest = run(phantom, store_root)
    assert not cold.cache["sampling_hit"], "first run must be cold"
    print(f"  cold: writes={cold.cache['writes']}")

    warm, warm_manifest = run(phantom, store_root)
    assert warm.cache["sampling_hit"], "warm run missed the sampling entry"
    assert warm.cache["tracking_hit"], "warm run missed the tracking entry"

    if det_blob(cold_manifest) != det_blob(warm_manifest):
        print("FAIL: deterministic manifest sections differ cold vs warm")
        print("  cold:", det_blob(cold_manifest)[:400])
        print("  warm:", det_blob(warm_manifest)[:400])
        return 1
    np.testing.assert_array_equal(cold.bedpost.samples, warm.bedpost.samples)
    np.testing.assert_array_equal(
        cold.probtrack.run.lengths, warm.probtrack.run.lengths
    )
    shape3 = cold.bedpost.fields[0].shape3
    np.testing.assert_array_equal(
        cold.probtrack.connectivity.visit_count_volume(shape3),
        warm.probtrack.connectivity.visit_count_volume(shape3),
    )
    print("  warm: bit-identical (samples, lengths, visit map, manifest)")

    # Acceptance sweep: three tracking specs, one MCMC.
    hits = [cold.cache["sampling_hit"]]
    for max_steps in (32, 48):
        wr, _ = run(phantom, store_root, tracking={"max_steps": max_steps})
        hits.append(wr.cache["sampling_hit"])
    if hits != [False, True, True]:
        print(f"FAIL: sampling hit pattern {hits}, expected [False, True, True]")
        return 1
    listing = ArtifactStore(store_root).ls()
    n_sampling = sum(e["stage"] == "sampling" for e in listing)
    if n_sampling != 1:
        print(f"FAIL: {n_sampling} sampling entries after the sweep, expected 1")
        return 1
    print(
        f"  sweep: 3 tracking specs, {n_sampling} sampling entry, "
        f"{sum(e['stage'] == 'tracking' for e in listing)} tracking entries"
    )
    print("cache parity OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
