#!/usr/bin/env python
"""Documentation checks: local markdown links + docstring doctests.

No external dependencies — this is what the CI ``docs`` job runs (and a
unit test keeps it honest locally):

* every relative link/image target in the repo's markdown pages must
  exist on disk (external ``http(s)``/``mailto`` targets and pure
  ``#anchors`` are skipped);
* the doctest-bearing modules (``repro.telemetry.*``,
  ``repro.config.*``, ``repro.store.fingerprint``,
  ``repro.service.jobs``, ``repro.utils.profiling``) must pass
  ``doctest.testmod``;
* every example run spec in ``examples/specs/`` must resolve to a valid
  ``RunSpec`` (the CI job additionally resolves each through
  ``repro-track --config ... --print-config``).

Exit status is the number of failures (0 = clean).
"""

from __future__ import annotations

import doctest
import importlib
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose local links must resolve.
MARKDOWN = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/architecture.md",
    "docs/observability.md",
    "docs/fault-tolerance.md",
    "docs/parallelism.md",
    "docs/configuration.md",
    "docs/connectome.md",
    "docs/storage.md",
    "docs/service.md",
    "docs/operations.md",
    "docs/api.md",
)

#: Modules whose doctests the docs job executes.
DOCTEST_MODULES = (
    "repro.telemetry.registry",
    "repro.telemetry.manifest",
    "repro.config.spec",
    "repro.config.layering",
    "repro.config.stages",
    "repro.store.fingerprint",
    "repro.service.jobs",
    "repro.utils.profiling",
)

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def iter_local_links(text: str):
    """Yield relative link targets from markdown, skipping code fences."""
    for target in _LINK.findall(_CODE_FENCE.sub("", text)):
        target = target.split("#", 1)[0]
        if not target or "://" in target or target.startswith("mailto:"):
            continue
        yield target


def check_links() -> list[str]:
    """Return one error string per broken local link."""
    errors = []
    for name in MARKDOWN:
        page = REPO / name
        if not page.exists():
            errors.append(f"{name}: page listed in MARKDOWN does not exist")
            continue
        for target in iter_local_links(page.read_text()):
            if not (page.parent / target).exists():
                errors.append(f"{name}: broken link -> {target}")
    return errors


def check_doctests() -> list[str]:
    """Return one error string per failing doctest module."""
    errors = []
    for name in DOCTEST_MODULES:
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False)
        if result.attempted == 0:
            errors.append(f"{name}: expected doctests, found none")
        elif result.failed:
            errors.append(f"{name}: {result.failed}/{result.attempted} doctests failed")
    return errors


def check_example_specs() -> list[str]:
    """Return one error string per invalid ``examples/specs/`` file."""
    from repro.config import RunSpec, load_spec_file
    from repro.errors import ConfigurationError

    specs = sorted((REPO / "examples" / "specs").glob("*"))
    if not specs:
        return ["examples/specs: expected example run specs, found none"]
    errors = []
    for path in specs:
        try:
            RunSpec.from_dict(load_spec_file(path))
        except ConfigurationError as exc:
            errors.append(f"examples/specs/{path.name}: {exc}")
    return errors


def main() -> int:
    """Run every check; print failures; exit with their count."""
    sys.path.insert(0, str(REPO / "src"))
    errors = check_links() + check_doctests() + check_example_specs()
    for err in errors:
        print(f"FAIL {err}")
    if not errors:
        print(f"docs OK: {len(MARKDOWN)} pages, {len(DOCTEST_MODULES)} doctest modules")
    return len(errors)


if __name__ == "__main__":
    sys.exit(main())
